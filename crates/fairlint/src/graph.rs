//! Cross-crate symbol index and call graph.
//!
//! Built once per workspace: every non-test `fn` item becomes a
//! [`Symbol`] carrying per-function facts (panic sites, blocking-call
//! sites), and a syntactic call-edge extractor links call sites to the
//! workspace functions they can reach. Resolution is deliberately an
//! over-approximation — a method call links to every same-named
//! workspace method — because the concurrency rules built on top (C1,
//! C3) want "could this reach a blocking/panicking function?" rather
//! than exact dispatch. Names that are ubiquitous on std types
//! (`clone`, `len`, `get`, …) are excluded from method resolution to
//! keep the noise floor near zero.
//!
//! Everything is deterministically ordered: symbols sort by
//! `(qname, path, line)`, edges by `(from, line, to)`, and the JSON and
//! DOT renderings are byte-identical across runs.

use std::collections::BTreeMap;

use crate::diag::json_escape;
use crate::items::{self, extract_fns, FnItem};
use crate::workspace::Workspace;

/// One fact about a function body: something at `line` that panics or
/// blocks, labelled with a short `what`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fact {
    /// 1-based line in the defining file.
    pub line: usize,
    /// Short label (`unwrap`, `indexing`, `thread::sleep`, …).
    pub what: String,
}

/// A workspace function plus its extracted facts.
#[derive(Clone, Debug)]
pub struct Symbol {
    /// The underlying item.
    pub item: FnItem,
    /// Panic sites in the body (S2's token family plus indexing).
    pub panics: Vec<Fact>,
    /// Blocking operations in the body (socket/file IO, channel
    /// receives, thread join/sleep).
    pub blocking: Vec<Fact>,
}

/// One call edge, resolved to a workspace symbol.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Caller index into [`Graph::symbols`].
    pub from: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
    /// Callee index into [`Graph::symbols`].
    pub to: usize,
    /// Whether the call site resolved to exactly one candidate. An
    /// uncertain edge models possible trait dispatch (a method name with
    /// several workspace impls); the concurrency rules only follow
    /// certain edges, while the exported graph keeps both.
    pub certain: bool,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// All non-test workspace functions, sorted by `(qname, path, line)`.
    pub symbols: Vec<Symbol>,
    /// Resolved call edges, sorted by `(from, line, to)` and deduped.
    pub edges: Vec<Edge>,
}

impl Graph {
    /// Outgoing edges of symbol `from`.
    pub fn callees(&self, from: usize) -> impl Iterator<Item = &Edge> {
        // Edges are sorted by `from`; a filter keeps the API simple
        // (workspace graphs are small).
        self.edges.iter().filter(move |e| e.from == from)
    }

    /// Index of the symbol whose qualified name is exactly `qname`.
    pub fn by_qname(&self, qname: &str) -> Option<usize> {
        self.symbols.iter().position(|s| s.item.qname == qname)
    }
}

/// Blocking-operation tokens. Tokens ending in `()` require the empty
/// argument list — that separates `JoinHandle::join()` from
/// `slice.join(", ")` and `RwLock::read()` from `io::Read::read(buf)`.
/// Condvar waits are deliberately absent: they release the guard.
pub const BLOCKING_TOKENS: &[(&str, &str)] = &[
    (".write_all(", "socket/file write"),
    (".write_fmt(", "socket/file write"),
    (".read_exact(", "socket/file read"),
    (".read_to_end(", "socket/file read"),
    (".read_to_string(", "socket/file read"),
    (".flush()", "stream flush"),
    (".recv()", "channel receive"),
    (".recv_timeout(", "channel receive"),
    (".join()", "thread join"),
    (".accept()", "socket accept"),
    ("thread::sleep(", "thread sleep"),
    ("TcpStream::connect(", "socket connect"),
    ("File::open(", "file open"),
    ("File::create(", "file create"),
    ("fs::read(", "file read"),
    ("fs::read_to_string(", "file read"),
    ("fs::read_dir(", "directory read"),
    ("fs::write(", "file write"),
    ("fs::copy(", "file copy"),
    ("fs::rename(", "file rename"),
    ("fs::remove_file(", "file remove"),
    ("fs::create_dir_all(", "directory create"),
];

/// Panic-site tokens (rule S2's family). Indexing is detected
/// separately in [`panic_facts`].
pub const PANIC_TOKENS: &[(&str, &str)] = &[
    (".unwrap(", "unwrap"),
    (".expect(", "expect"),
    ("panic!", "panic!"),
    ("unreachable!", "unreachable!"),
    ("todo!", "todo!"),
    ("unimplemented!", "unimplemented!"),
    ("assert!", "assert!"),
    ("assert_eq!", "assert_eq!"),
    ("assert_ne!", "assert_ne!"),
];

/// Finds `token` occurrences in `text` at identifier boundaries,
/// returning byte offsets. Same boundary discipline as the token
/// rules: a leading `.` or trailing `(`/`!`/`)` self-delimits.
pub(crate) fn find_tokens(text: &str, token: &str) -> Vec<usize> {
    let b = text.as_bytes();
    let tb = token.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(at) = text[from..].find(token) {
        let start = from + at;
        let end = start + token.len();
        let self_prefixed = !items::is_ident(tb[0]);
        let left_ok = self_prefixed || start == 0 || !items::is_ident(b[start - 1]);
        let self_delimited = matches!(tb[tb.len() - 1], b'(' | b'!' | b')');
        let right_ok = self_delimited || end >= b.len() || !items::is_ident(b[end]);
        if left_ok && right_ok {
            hits.push(start);
        }
        from = start + 1;
    }
    hits
}

/// Panic facts of a function body (`body` is the slice between the
/// braces; `base` its byte offset in the file; `lines` the file index).
fn panic_facts(body: &str, base: usize, lines: &LineIndex) -> Vec<Fact> {
    let mut out = Vec::new();
    for (tok, what) in PANIC_TOKENS {
        for off in find_tokens(body, tok) {
            out.push(Fact {
                line: lines.line_of(base + off),
                what: (*what).to_string(),
            });
        }
    }
    // Indexing: `expr[` — a `[` straight after an identifier character
    // or a closing bracket. Attributes (`#[`), array types/literals
    // (`[u8; 4]`) and generic positions are not preceded by those.
    let b = body.as_bytes();
    for i in 1..b.len() {
        if b[i] == b'[' && (items::is_ident(b[i - 1]) || b[i - 1] == b')' || b[i - 1] == b']') {
            out.push(Fact {
                line: lines.line_of(base + i),
                what: "indexing".to_string(),
            });
        }
    }
    out.sort_by(|a, b| (a.line, &a.what).cmp(&(b.line, &b.what)));
    out.dedup();
    out
}

/// Blocking facts of a function body.
fn blocking_facts(body: &str, base: usize, lines: &LineIndex) -> Vec<Fact> {
    let mut out = Vec::new();
    for (tok, what) in BLOCKING_TOKENS {
        for off in find_tokens(body, tok) {
            out.push(Fact {
                line: lines.line_of(base + off),
                what: (*what).to_string(),
            });
        }
    }
    out.sort_by(|a, b| (a.line, &a.what).cmp(&(b.line, &b.what)));
    out.dedup();
    out
}

/// Byte-offset → 1-based line lookup for one file.
pub(crate) struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    pub(crate) fn new(text: &str) -> LineIndex {
        let mut starts = vec![0usize];
        for (i, c) in text.bytes().enumerate() {
            if c == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    pub(crate) fn line_of(&self, off: usize) -> usize {
        self.starts.partition_point(|&s| s <= off)
    }
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum CallKind {
    /// `recv.name(...)` — resolved against workspace methods.
    Method(String),
    /// `a::b::name(...)` — resolved by qualified-name suffix match.
    Path(Vec<String>),
    /// `name(...)` — resolved against free functions, nearest first.
    Bare(String),
}

/// One syntactic call site inside a function body.
#[derive(Clone, Debug)]
pub(crate) struct CallSite {
    /// Byte offset of the callee name in the file.
    pub off: usize,
    pub kind: CallKind,
}

/// Words that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "move", "fn", "let", "else", "break",
    "continue", "unsafe", "as", "where", "impl", "dyn", "ref", "mut", "use", "pub", "true",
    "false", "type", "struct", "enum", "union", "static", "const", "trait", "mod", "box", "await",
    "async", "yield",
];

/// Method names so common on std types that resolving them against
/// workspace methods would drown the graph in false edges.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "bytes",
    "ceil",
    "chain",
    "char_indices",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "concat",
    "connect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "exists",
    "expect",
    "extend",
    "extend_from_slice",
    "extension",
    "file_name",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "accept",
    "flush",
    "into",
    "into_iter",
    "is_dir",
    "is_empty",
    "is_err",
    "is_file",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "load",
    "lock",
    "ln",
    "map",
    "map_err",
    "max",
    "min",
    "ne",
    "next",
    "notify_all",
    "notify_one",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "peekable",
    "pop",
    "position",
    "pow",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "rem_euclid",
    "remove",
    "repeat",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "rfind",
    "round",
    "saturating_add",
    "saturating_sub",
    "send",
    "skip",
    "skip_while",
    "sleep",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "spawn",
    "split",
    "split_once",
    "split_whitespace",
    "splitn",
    "sqrt",
    "starts_with",
    "step_by",
    "store",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "take",
    "take_while",
    "then",
    "then_some",
    "then_with",
    "to_le_bytes",
    "to_be_bytes",
    "to_owned",
    "to_path_buf",
    "to_string",
    "to_string_lossy",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "try_clone",
    "try_lock",
    "try_recv",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "wait",
    "wait_timeout",
    "windows",
    "with_extension",
    "write",
    "write_all",
    "write_fmt",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "zip",
];

/// Extracts syntactic call sites from a body slice (`base` is the
/// slice's byte offset in the file).
pub(crate) fn extract_calls(body: &str, base: usize) -> Vec<CallSite> {
    let b = body.as_bytes();
    let mut out = Vec::new();
    for k in 1..b.len() {
        if b[k] != b'(' || b[k - 1] == b'!' {
            continue; // not a call head, or a macro invocation
        }
        // Read the callee identifier backwards.
        let mut s = k;
        while s > 0 && items::is_ident(b[s - 1]) {
            s -= 1;
        }
        if s == k || !items::is_ident_start(b[s]) {
            continue; // bare expression parens or a number
        }
        let name = &body[s..k];
        if KEYWORDS.contains(&name) {
            continue;
        }
        if s >= 1 && b[s - 1] == b'.' {
            out.push(CallSite {
                off: base + s,
                kind: CallKind::Method(name.to_string()),
            });
            continue;
        }
        if s >= 2 && &b[s - 2..s] == b"::" {
            // Walk the path backwards: `a::b::name`.
            let mut segs = vec![name.to_string()];
            let mut cur = s;
            while cur >= 2 && &b[cur - 2..cur] == b"::" {
                let mut t = cur - 2;
                while t > 0 && items::is_ident(b[t - 1]) {
                    t -= 1;
                }
                if t == cur - 2 || !items::is_ident_start(b[t]) {
                    break; // `<Foo as Trait>::name` — stop at the `>`
                }
                segs.insert(0, body[t..cur - 2].to_string());
                cur = t;
            }
            out.push(CallSite {
                off: base + s,
                kind: CallKind::Path(segs),
            });
            continue;
        }
        // `fn name(` is a definition, not a call.
        let mut t = s;
        while t > 0 && (b[t - 1] == b' ' || b[t - 1] == b'\n' || b[t - 1] == b'\t') {
            t -= 1;
        }
        let mut w = t;
        while w > 0 && items::is_ident(b[w - 1]) {
            w -= 1;
        }
        if &body[w..t] == "fn" {
            continue;
        }
        out.push(CallSite {
            off: base + s,
            kind: CallKind::Bare(name.to_string()),
        });
    }
    out
}

/// Builds the call graph for a loaded workspace. Test-path files and
/// `#[cfg(test)]` items are excluded — the graph models shipped code.
pub fn build(ws: &Workspace) -> Graph {
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut line_index: BTreeMap<&str, LineIndex> = BTreeMap::new();
    for f in ws.files.iter().filter(|f| !f.is_test_path) {
        let lines = line_index
            .entry(f.rel.as_str())
            .or_insert_with(|| LineIndex::new(&f.text));
        for item in extract_fns(f) {
            if item.is_test {
                continue;
            }
            let body = item.body(&f.text);
            let base = item.body_start + 1;
            symbols.push(Symbol {
                panics: panic_facts(body, base, lines),
                blocking: blocking_facts(body, base, lines),
                item,
            });
        }
    }
    symbols.sort_by(|a, b| {
        (&a.item.qname, &a.item.rel, a.item.line).cmp(&(&b.item.qname, &b.item.rel, b.item.line))
    });

    // Name → symbol indices (post-sort, so ids are stable).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, s) in symbols.iter().enumerate() {
        by_name.entry(s.item.name.as_str()).or_default().push(i);
    }

    let mut edges: Vec<Edge> = Vec::new();
    for (si, sym) in symbols.iter().enumerate() {
        let Some(f) = ws.file_by_rel(&sym.item.rel) else {
            continue;
        };
        let lines = &line_index[sym.item.rel.as_str()];
        let body = sym.item.body(&f.text);
        for call in extract_calls(body, sym.item.body_start + 1) {
            let targets = resolve(&call.kind, sym, &symbols, &by_name, ws);
            let certain = targets.len() == 1;
            for to in targets {
                if to != si {
                    edges.push(Edge {
                        from: si,
                        line: lines.line_of(call.off),
                        to,
                        certain,
                    });
                }
            }
        }
    }
    // Certain edges sort first, so the dedup keeps an edge certain if
    // any resolution of that (from, line, to) triple was unambiguous.
    edges.sort_by_key(|e| (e.from, e.line, e.to, !e.certain));
    edges.dedup_by(|b, a| (a.from, a.line, a.to) == (b.from, b.line, b.to));
    Graph { symbols, edges }
}

/// Resolves one call site to workspace symbol indices.
fn resolve(
    kind: &CallKind,
    caller: &Symbol,
    symbols: &[Symbol],
    by_name: &BTreeMap<&str, Vec<usize>>,
    ws: &Workspace,
) -> Vec<usize> {
    let named = |name: &str| by_name.get(name).map(Vec::as_slice).unwrap_or(&[]);
    match kind {
        CallKind::Method(name) => {
            if STD_METHODS.contains(&name.as_str()) {
                return vec![];
            }
            let methods: Vec<usize> = named(name)
                .iter()
                .copied()
                .filter(|&i| symbols[i].item.owner.is_some())
                .collect();
            // Nearest scope wins, mirroring bare calls: a method defined
            // in the caller's file (or crate) shadows same-named methods
            // elsewhere; only without a local candidate do all impls
            // remain (possible trait dispatch — an uncertain edge).
            for pick in [
                methods
                    .iter()
                    .copied()
                    .filter(|&i| symbols[i].item.rel == caller.item.rel)
                    .collect::<Vec<_>>(),
                methods
                    .iter()
                    .copied()
                    .filter(|&i| symbols[i].item.krate == caller.item.krate)
                    .collect::<Vec<_>>(),
                methods.clone(),
            ] {
                if !pick.is_empty() {
                    return pick;
                }
            }
            vec![]
        }
        CallKind::Bare(name) => {
            let frees: Vec<usize> = named(name)
                .iter()
                .copied()
                .filter(|&i| symbols[i].item.owner.is_none())
                .collect();
            // Nearest scope wins: same file, then same crate, then any.
            for pick in [
                frees
                    .iter()
                    .copied()
                    .filter(|&i| symbols[i].item.rel == caller.item.rel)
                    .collect::<Vec<_>>(),
                frees
                    .iter()
                    .copied()
                    .filter(|&i| symbols[i].item.krate == caller.item.krate)
                    .collect::<Vec<_>>(),
                frees.clone(),
            ] {
                if !pick.is_empty() {
                    return pick;
                }
            }
            vec![]
        }
        CallKind::Path(segs) => {
            let mut segs: Vec<String> = segs.clone();
            // Normalize the leading segment to graph conventions.
            match segs.first().map(String::as_str) {
                Some("crate") => {
                    segs[0] = items::module_path(&caller.item.rel)
                        .first()
                        .cloned()
                        .unwrap_or_default();
                }
                Some("self") | Some("super") => {
                    segs.remove(0);
                }
                Some("Self") => match &caller.item.owner {
                    Some(owner) => segs[0] = owner.clone(),
                    None => {
                        segs.remove(0);
                    }
                },
                Some(first) => {
                    // `fair_tiles::…` → crate dir `tiles`.
                    if let Some(short) = first.strip_prefix("fair_") {
                        if ws.members.iter().any(|m| m == short) {
                            segs[0] = short.to_string();
                        }
                    }
                }
                None => {}
            }
            if segs.is_empty() {
                return vec![];
            }
            let last = segs.last().cloned().unwrap_or_default();
            named(&last)
                .iter()
                .copied()
                .filter(|&i| qname_ends_with(&symbols[i].item.qname, &segs))
                .collect()
        }
    }
}

/// Whether `qname`'s `::`-segments end with `segs`.
fn qname_ends_with(qname: &str, segs: &[String]) -> bool {
    let q: Vec<&str> = qname.split("::").collect();
    segs.len() <= q.len()
        && q[q.len() - segs.len()..]
            .iter()
            .zip(segs)
            .all(|(a, b)| *a == b)
}

/// Renders the graph as deterministic, diff-friendly JSON.
pub fn render_json(g: &Graph) -> String {
    let mut out = String::from("{\"version\":1,\n\"crates\":[");
    let mut crates: Vec<&str> = g
        .symbols
        .iter()
        .filter_map(|s| s.item.krate.as_deref())
        .collect();
    crates.sort_unstable();
    crates.dedup();
    out.push_str(
        &crates
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push_str("],\n\"symbols\":[\n");
    let facts = |fs: &[Fact]| {
        fs.iter()
            .map(|f| {
                format!(
                    "{{\"line\":{},\"what\":\"{}\"}}",
                    f.line,
                    json_escape(&f.what)
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let syms: Vec<String> = g
        .symbols
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "{{\"id\":{},\"qname\":\"{}\",\"crate\":\"{}\",\"path\":\"{}\",\"line\":{},\"panics\":[{}],\"blocking\":[{}]}}",
                i,
                json_escape(&s.item.qname),
                json_escape(s.item.krate.as_deref().unwrap_or("")),
                json_escape(&s.item.rel),
                s.item.line,
                facts(&s.panics),
                facts(&s.blocking),
            )
        })
        .collect();
    out.push_str(&syms.join(",\n"));
    out.push_str("\n],\n\"edges\":[\n");
    let edges: Vec<String> = g
        .edges
        .iter()
        .map(|e| {
            format!(
                "{{\"from\":{},\"to\":{},\"line\":{},\"certain\":{}}}",
                e.from, e.to, e.line, e.certain
            )
        })
        .collect();
    out.push_str(&edges.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Renders the graph in Graphviz DOT form (nodes and deduped edges,
/// both sorted).
pub fn render_dot(g: &Graph) -> String {
    let mut out = String::from("digraph fairlint {\n  rankdir=LR;\n");
    for s in &g.symbols {
        out.push_str(&format!("  \"{}\";\n", s.item.qname.replace('"', "'")));
    }
    // Certain first, so the dedup keeps a pair solid when any call site
    // resolved it unambiguously; uncertain (trait-dispatch) edges render
    // dashed.
    let mut pairs: Vec<(usize, usize, bool)> =
        g.edges.iter().map(|e| (e.from, e.to, !e.certain)).collect();
    pairs.sort_unstable();
    pairs.dedup_by_key(|&mut (from, to, _)| (from, to));
    for (from, to, uncertain) in pairs {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\"{};\n",
            g.symbols[from].item.qname.replace('"', "'"),
            g.symbols[to].item.qname.replace('"', "'"),
            if uncertain { " [style=dashed]" } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::Path;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_contents(
            Path::new("/ws"),
            Path::new(&format!("/ws/{rel}")),
            src.into(),
        )
    }

    #[test]
    fn call_kinds_are_classified() {
        let calls = extract_calls(
            "helper(); x.method(1); a::b::path_fn(); mac!(no); (x)(y);",
            0,
        );
        let kinds: Vec<&CallKind> = calls.iter().map(|c| &c.kind).collect();
        assert_eq!(kinds.len(), 3, "{calls:?}");
        assert_eq!(*kinds[0], CallKind::Bare("helper".into()));
        assert_eq!(*kinds[1], CallKind::Method("method".into()));
        assert_eq!(
            *kinds[2],
            CallKind::Path(vec!["a".into(), "b".into(), "path_fn".into()])
        );
    }

    #[test]
    fn panic_and_blocking_facts() {
        let lines = LineIndex::new("a\nb\nc\nd\n");
        let p = panic_facts("x.unwrap();\nv[0];\npanic!();\n#[cfg(x)]\n", 0, &lines);
        let whats: Vec<&str> = p.iter().map(|f| f.what.as_str()).collect();
        assert_eq!(whats, ["unwrap", "indexing", "panic!"]);
        let b = blocking_facts("s.write_all(b);\nh.join();\nparts.join(x);\n", 0, &lines);
        let whats: Vec<&str> = b.iter().map(|f| f.what.as_str()).collect();
        // `.join()` needs the empty argument list — `parts.join(x)` is
        // string/slice join, not a thread join.
        assert_eq!(whats, ["socket/file write", "thread join"]);
    }

    #[test]
    fn line_index_maps_offsets() {
        let idx = LineIndex::new("ab\ncd\nef");
        assert_eq!(idx.line_of(0), 1);
        assert_eq!(idx.line_of(2), 1);
        assert_eq!(idx.line_of(3), 2);
        assert_eq!(idx.line_of(7), 3);
    }

    #[test]
    fn qname_suffix_matching_is_segment_aligned() {
        assert!(qname_ends_with(
            "serve::cache::ShardedCache::get_or_compute",
            &["ShardedCache".into(), "get_or_compute".into()]
        ));
        assert!(!qname_ends_with(
            "serve::cache::ShardedCache::get_or_compute",
            &["Cache".into(), "get_or_compute".into()]
        ));
    }

    #[test]
    fn graph_over_a_tiny_workspace_resolves_cross_crate_calls() {
        let dir = std::env::temp_dir().join("fairlint_graph_test_ws");
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, src) in [
            ("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n"),
            ("crates/a/Cargo.toml", "[package]\nname = \"a\"\n"),
            (
                "crates/a/src/lib.rs",
                "pub fn risky(x: &[u8]) -> u8 { x[0] }\npub fn caller() { crate::risky(&[]); }\n",
            ),
            ("crates/b/Cargo.toml", "[package]\nname = \"b\"\n"),
            (
                "crates/b/src/lib.rs",
                "pub fn cross() {\n    fair_a::risky(&[]);\n    a::risky(&[]);\n}\n",
            ),
        ] {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, src).unwrap();
        }
        let ws = Workspace::load(&dir).expect("loads");
        let g = build(&ws);
        let risky = g.by_qname("a::risky").expect("a::risky indexed");
        assert_eq!(g.symbols[risky].panics[0].what, "indexing");
        let caller = g.by_qname("a::caller").unwrap();
        let cross = g.by_qname("b::cross").unwrap();
        assert!(g.callees(caller).any(|e| e.to == risky), "crate:: resolves");
        // Both the `fair_a::` alias and the bare dir name resolve.
        assert_eq!(g.callees(cross).filter(|e| e.to == risky).count(), 2);
        // Deterministic rendering: two builds, identical bytes.
        let again = build(&ws);
        assert_eq!(render_json(&g), render_json(&again));
        assert_eq!(render_dot(&g), render_dot(&again));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
