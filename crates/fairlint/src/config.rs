//! `fairlint.toml` — checked-in, path-scoped configuration.
//!
//! Parsing rides the workspace's shared TOML-subset parser
//! ([`fair_simlab::tomlish`]) in lenient mode: unknown keys and
//! constructs are ignored so the format can grow. This module narrows
//! the shared [`tomlish::Value`](fair_simlab::tomlish::Value) to the
//! string-centric [`TomlValue`] shape the config schema actually uses.

use std::path::Path;

use fair_simlab::tomlish;

/// One parsed `key = value` under its section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TomlValue {
    /// `key = "…"`
    Str(String),
    /// `key = ["…", "…"]`
    List(Vec<String>),
    /// `key = true`
    Bool(bool),
    /// `key = 3`
    Int(i64),
}

/// Flat `section.key → value` view of the file (sections joined with
/// dots). Order-preserving and deterministic. Values the config schema
/// has no use for (floats, non-string array elements) are dropped, like
/// any other construct lenient parsing does not understand.
pub fn parse_toml_subset(src: &str) -> Vec<(String, TomlValue)> {
    tomlish::parse_lenient(src)
        .into_iter()
        .filter_map(|item| Some((item.key, narrow(item.value)?)))
        .collect()
}

fn narrow(value: tomlish::Value) -> Option<TomlValue> {
    match value {
        tomlish::Value::Str(s) => Some(TomlValue::Str(s)),
        tomlish::Value::Bool(b) => Some(TomlValue::Bool(b)),
        tomlish::Value::Int(n) => Some(TomlValue::Int(n)),
        tomlish::Value::Float(_) => None,
        tomlish::Value::List(items) => Some(TomlValue::List(
            items
                .into_iter()
                .filter_map(|v| match v {
                    tomlish::Value::Str(s) => Some(s),
                    _ => None,
                })
                .collect(),
        )),
    }
}

/// Effective rule configuration: built-in defaults overridden by any
/// `fairlint.toml` at the workspace root.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crates inside the determinism boundary (rule D1).
    pub boundary_crates: Vec<String>,
    /// Crates whose non-test code rule D2 (float `==`) covers.
    pub float_crates: Vec<String>,
    /// Crates holding secret-bearing types (rule S1).
    pub secret_crates: Vec<String>,
    /// Type-name suffixes that mark a type secret-bearing.
    pub secret_suffixes: Vec<String>,
    /// Extra exact type names treated as secret-bearing.
    pub extra_secret_types: Vec<String>,
    /// Workspace-relative files whose message paths rule S2 hardens.
    pub engine_paths: Vec<String>,
    /// Crates exempt from rule R2's `#![forbid(unsafe_code)]`.
    pub unsafe_allow_crates: Vec<String>,
    /// Workspace-relative files allowed to read the environment (R4).
    pub env_allow_paths: Vec<String>,
    /// Crates that must emit diagnostics via the fair-trace Tracer
    /// rather than stdout/stderr (rule T1).
    pub trace_crates: Vec<String>,
    /// Workspace members exempt from rule R5's coverage requirement
    /// (vendored stand-ins, the linter itself, harness-side crates).
    pub r5_allow_crates: Vec<String>,
    /// Crates rule C1 (blocking-under-lock) covers; empty = all.
    pub c1_crates: Vec<String>,
    /// Function names treated as guard-returning lock helpers by the
    /// concurrency scans (`lock(shard)`-style wrappers).
    pub c1_guard_helpers: Vec<String>,
    /// Crates rule C2 (lock-order consistency) covers; empty = all.
    pub c2_crates: Vec<String>,
    /// Call-graph depth rule C3 (panic reachability) traverses.
    pub c3_depth: usize,
    /// Fully qualified names of proven-total functions C3 may not
    /// flag or traverse into.
    pub c3_allow_fns: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        Config {
            boundary_crates: v(&[
                "core",
                "protocols",
                "runtime",
                "crypto",
                "field",
                "circuits",
            ]),
            float_crates: v(&["core", "bench"]),
            secret_crates: v(&["crypto"]),
            secret_suffixes: v(&["Key", "Tag", "Opening", "Share", "Holding", "Secret"]),
            extra_secret_types: vec![],
            engine_paths: v(&["crates/runtime/src/engine.rs"]),
            unsafe_allow_crates: vec![],
            env_allow_paths: vec![],
            trace_crates: v(&["runtime", "protocols"]),
            r5_allow_crates: vec![],
            c1_crates: vec![],
            c1_guard_helpers: v(&["lock"]),
            c2_crates: vec![],
            c3_depth: 2,
            c3_allow_fns: vec![],
        }
    }
}

impl Config {
    /// Loads `fairlint.toml` from `root`, merging over the defaults.
    /// A missing file yields the defaults; present keys replace them.
    pub fn load(root: &Path) -> Config {
        let mut cfg = Config::default();
        let Ok(src) = std::fs::read_to_string(root.join("fairlint.toml")) else {
            return cfg;
        };
        cfg.apply(&parse_toml_subset(&src));
        cfg
    }

    /// Applies parsed key/value pairs over the current settings.
    pub fn apply(&mut self, pairs: &[(String, TomlValue)]) {
        for (key, value) in pairs {
            if let (&"rules.C3.depth", TomlValue::Int(n)) = (&key.as_str(), value) {
                self.c3_depth = usize::try_from(*n).unwrap_or(1).max(1);
                continue;
            }
            let TomlValue::List(items) = value else {
                continue;
            };
            match key.as_str() {
                "boundary.crates" => self.boundary_crates = items.clone(),
                "rules.D2.crates" => self.float_crates = items.clone(),
                "rules.S1.crates" => self.secret_crates = items.clone(),
                "rules.S1.suffixes" => self.secret_suffixes = items.clone(),
                "rules.S1.extra_types" => self.extra_secret_types = items.clone(),
                "rules.S2.paths" => self.engine_paths = items.clone(),
                "rules.R2.allow_crates" => self.unsafe_allow_crates = items.clone(),
                "rules.R5.allow_crates" => self.r5_allow_crates = items.clone(),
                "rules.T1.crates" => self.trace_crates = items.clone(),
                "rules.C1.crates" => self.c1_crates = items.clone(),
                "rules.C1.guard_helpers" => self.c1_guard_helpers = items.clone(),
                "rules.C2.crates" => self.c2_crates = items.clone(),
                "rules.C3.allow_fns" => self.c3_allow_fns = items.clone(),
                "allow.R4.paths" => self.env_allow_paths = items.clone(),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_lists_bools() {
        let pairs = parse_toml_subset(
            "# header\n[boundary]\ncrates = [\"core\", \"field\"]\n\n[allow.R4]\npaths = [\"a/b.rs\"]\nreason = \"the one entry point\"\nstrict = true\n",
        );
        assert!(pairs.contains(&(
            "boundary.crates".into(),
            TomlValue::List(vec!["core".into(), "field".into()])
        )));
        assert!(pairs.contains(&(
            "allow.R4.reason".into(),
            TomlValue::Str("the one entry point".into())
        )));
        assert!(pairs.contains(&("allow.R4.strict".into(), TomlValue::Bool(true))));
    }

    #[test]
    fn parses_multi_line_arrays() {
        let pairs = parse_toml_subset(
            "[rules.S2]\npaths = [\n    \"a/b.rs\",  # why a/b is in scope\n    \"c/d.rs\",\n]\nnext = true\n",
        );
        assert!(pairs.contains(&(
            "rules.S2.paths".into(),
            TomlValue::List(vec!["a/b.rs".into(), "c/d.rs".into()])
        )));
        // Parsing resumes cleanly after the closing bracket.
        assert!(pairs.contains(&("rules.S2.next".into(), TomlValue::Bool(true))));
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let pairs = parse_toml_subset("k = \"a#b\"\n");
        assert_eq!(pairs, vec![("k".into(), TomlValue::Str("a#b".into()))]);
    }

    #[test]
    fn parses_integers() {
        let pairs = parse_toml_subset("[rules.C3]\ndepth = 3\nallow_fns = [\"a::b\"]\n");
        assert!(pairs.contains(&("rules.C3.depth".into(), TomlValue::Int(3))));
        let mut cfg = Config::default();
        assert_eq!(cfg.c3_depth, 2);
        cfg.apply(&pairs);
        assert_eq!(cfg.c3_depth, 3);
        assert_eq!(cfg.c3_allow_fns, vec!["a::b".to_string()]);
    }

    #[test]
    fn apply_overrides_defaults() {
        let mut cfg = Config::default();
        cfg.apply(&[(
            "rules.S1.extra_types".into(),
            TomlValue::List(vec!["Prg".into()]),
        )]);
        assert_eq!(cfg.extra_secret_types, vec!["Prg".to_string()]);
        // Untouched keys keep defaults.
        assert!(cfg.boundary_crates.contains(&"core".to_string()));
    }
}
