//! The rule set. Each rule is a pure function from the loaded
//! [`Workspace`](crate::workspace::Workspace) to diagnostics; the
//! registry below is the single source of truth for ids shown by
//! `--list-rules` and accepted by `fairlint::allow(...)`.

use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Static description of one rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable id (`D1`, `S2`, …).
    pub id: &'static str,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// Why the rule exists — shown by `--explain`.
    pub rationale: &'static str,
    /// How to fix (or legitimately silence) a finding — shown by
    /// `--explain`.
    pub fix: &'static str,
}

/// Every rule fairlint knows about.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        summary: "no wall-clock, ambient entropy, or iteration-order hazards inside the determinism boundary",
        rationale: "Served and batch estimates must be bit-identical for any worker count; a single Instant::now, thread_rng, or HashMap iteration inside the protocol/estimator layers silently breaks that.",
        fix: "Route timing through fair-simlab (BatchTimer), randomness through seeded rngs, and use BTreeMap/BTreeSet. Scope the boundary in fairlint.toml [boundary] crates.",
    },
    RuleInfo {
        id: "D2",
        summary: "no direct ==/!= against float literals in estimator/statistics code (use stats::approx_eq)",
        rationale: "Exact float equality flips verdicts on rounding differences between otherwise-identical runs.",
        fix: "Compare through fair_core::stats::approx_eq / approx_zero with an explicit tolerance.",
    },
    RuleInfo {
        id: "S1",
        summary: "no derived Debug/PartialEq on secret-bearing crypto types (redact + constant-time eq)",
        rationale: "Derived Debug prints key/share material into logs and panics; derived PartialEq short-circuits, leaking positions through timing.",
        fix: "Implement a redacted Debug and constant-time equality via crypto::ct. Name secret types by suffix or exact name in fairlint.toml [rules.S1].",
    },
    RuleInfo {
        id: "S2",
        summary: "no unwrap/expect/panic in engine message-handling paths (adversarial input => typed errors)",
        rationale: "Files listed in [rules.S2] paths process adversary-controlled bytes; a panic there is a denial of service an attacker can trigger at will.",
        fix: "Return a typed error (EngineError, ParseError) instead. Add newly exposed files to [rules.S2] paths so they inherit the contract.",
    },
    RuleInfo {
        id: "R1",
        summary: "experiment bins, the shared-runner registry, and EXPERIMENTS.md must agree",
        rationale: "An experiment that exists in only two of the three places is either unrunnable, unreproducible, or undocumented.",
        fix: "Add/remove the exp_* bin, the ALL_EXPERIMENTS entry, and the EXPERIMENTS.md row together.",
    },
    RuleInfo {
        id: "R2",
        summary: "every crate root carries #![forbid(unsafe_code)] (or an explicit allowlist entry)",
        rationale: "The whole workspace builds without unsafe; keeping the forbid in every crate root makes that a checked invariant instead of a habit.",
        fix: "Add #![forbid(unsafe_code)] to the crate root, or list the crate in fairlint.toml [rules.R2] allow_crates with a comment saying why.",
    },
    RuleInfo {
        id: "R3",
        summary: "no todo!/unimplemented! outside test code",
        rationale: "Placeholder panics ship as runtime crashes.",
        fix: "Finish the code path or return a typed error.",
    },
    RuleInfo {
        id: "R4",
        summary: "environment reads only via the sanctioned config entry point",
        rationale: "Scattered env reads make runs irreproducible and knobs undiscoverable; FAIR_* variables are parsed once, with errors naming the variable.",
        fix: "Read knobs through fair_simlab::config::env_usize, or allowlist a new entry point in fairlint.toml [allow.R4] paths.",
    },
    RuleInfo {
        id: "R5",
        summary: "every workspace member is covered by a fairlint.toml crate scope or allowlisted",
        rationale: "A crate outside every rule scope is invisible to the linter — new code would join the tree unsupervised.",
        fix: "Place the crate under a rule's scope (boundary, D2, S1, T1) or list it in [rules.R5] allow_crates with a justification comment.",
    },
    RuleInfo {
        id: "L1",
        summary: "fairlint::allow suppressions must name a known rule and carry a reason",
        rationale: "A suppression without a reason is unreviewable; one naming an unknown rule silences nothing and rots.",
        fix: "Write // fairlint::allow(RULE, reason = \"why this occurrence is sound\"). L1 itself cannot be suppressed.",
    },
    RuleInfo {
        id: "T1",
        summary: "engine/protocol crates emit diagnostics only through the fair-trace Tracer (no print!/eprintln!/dbg!)",
        rationale: "Recorded transcripts are the single source of diagnostic truth; stray prints bypass them and corrupt piped JSON output.",
        fix: "Emit through the fair_trace::Tracer threaded by execute_traced, or move the printing front-end outside the T1 crates.",
    },
    RuleInfo {
        id: "C1",
        summary: "no blocking operation (socket/file IO, recv, join, sleep) while a Mutex/RwLock guard is live",
        rationale: "A lock held across a blocking call serializes every other thread behind one slow socket or disk — the single-flight cache, worker pool, and tile store all depend on guards dying before IO starts.",
        fix: "drop(guard) before the blocking call (encode under the lock, write outside it), or move the IO out of the critical section. Checked directly and one call deep through the workspace call graph; condvar waits are exempt (they release the guard).",
    },
    RuleInfo {
        id: "C2",
        summary: "lock sites must be acquired in one consistent order workspace-wide",
        rationale: "Two threads taking the same pair of locks in opposite orders can deadlock; the conflict is invisible per-function and only appears across the workspace.",
        fix: "Pick one global acquisition order for the named sites (document it where the locks are declared) and reorder the offending function; both conflicting sites are flagged.",
    },
    RuleInfo {
        id: "C3",
        summary: "panic-free (S2) paths must not call workspace functions that can panic, transitively",
        rationale: "S2 keeps panics out of message-handling files token-by-token, but a call into a helper that unwraps or indexes re-introduces the same denial of service one hop away.",
        fix: "Return a typed error from the callee, or — for helpers that are total by construction (bounds checked, non-empty by invariant) — allowlist the qualified name in fairlint.toml [rules.C3] allow_fns. Traversal depth is [rules.C3] depth.",
    },
];

/// Whether `id` names a known rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Runs every rule over the workspace, applies suppressions, and
/// returns diagnostics sorted by `(path, line, rule, message)`.
pub fn check_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in &ws.files {
        check_d1(ws, f, &mut diags);
        check_d2(ws, f, &mut diags);
        check_s1(ws, f, &mut diags);
        check_s2(ws, f, &mut diags);
        check_r3(f, &mut diags);
        check_r4(ws, f, &mut diags);
        check_l1(f, &mut diags);
        check_t1(ws, f, &mut diags);
    }
    check_r1(ws, &mut diags);
    check_r2(ws, &mut diags);
    check_r5(ws, &mut diags);

    // Concurrency discipline (C1–C3) runs over the workspace call graph
    // rather than per-file tokens.
    let graph = crate::graph::build(ws);
    crate::concurrency::check(ws, &graph, &mut diags);

    // Apply suppressions (L1 polices the suppressions themselves and is
    // not itself suppressible).
    diags.retain(|d| {
        d.rule == "L1"
            || !ws
                .file_by_rel(&d.rel)
                .is_some_and(|f| f.suppressed(d.rule, d.line))
    });
    diags.sort_by(|a, b| {
        (&a.rel, a.line, a.rule, &a.message).cmp(&(&b.rel, b.line, b.rule, &b.message))
    });
    diags
}

fn err(rule: &'static str, f: &SourceFile, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        rel: f.rel.clone(),
        line,
        message,
    }
}

/// Finds `token` in `line` at an identifier boundary. Tokens ending in
/// `(` or `!` carry their own right delimiter; otherwise the following
/// character must not continue an identifier.
fn token_hit(line: &str, token: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0usize;
    while let Some(at) = line[from..].find(token) {
        let start = from + at;
        let end = start + token.len();
        // A token beginning with `.` supplies its own left delimiter.
        let self_prefixed = !is_ident(token.as_bytes()[0]);
        let left_ok = self_prefixed || start == 0 || !is_ident(b[start - 1]);
        let self_delimited = token.ends_with('(') || token.ends_with('!');
        let right_ok = self_delimited || end >= b.len() || !is_ident(b[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// D1 — determinism boundary: no wall clock, ambient entropy, or
/// iteration-order-unstable containers in the listed crates' non-test
/// code. Timing belongs in simlab/bench/criterion.
fn check_d1(ws: &Workspace, f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const TOKENS: &[(&str, &str)] = &[
        ("Instant::now", "wall-clock read"),
        ("SystemTime", "wall-clock type"),
        ("thread_rng", "ambient entropy source"),
        ("from_entropy", "ambient entropy source"),
        ("HashMap", "iteration-order-unstable container"),
        ("HashSet", "iteration-order-unstable container"),
    ];
    let Some(krate) = &f.krate else { return };
    if !ws.config.boundary_crates.contains(krate) || f.is_test_path {
        return;
    }
    for (line_no, line) in f.lines() {
        if f.is_test_line(line_no) {
            continue;
        }
        for (token, what) in TOKENS {
            if token_hit(line, token) {
                out.push(err(
                    "D1",
                    f,
                    line_no,
                    format!(
                        "{what} `{token}` inside the determinism boundary (crate `{krate}`); \
                         route timing through fair-simlab and randomness through seeded rngs"
                    ),
                ));
            }
        }
    }
}

/// D2 — float comparisons: `==`/`!=` with a float-literal operand in
/// estimator/statistics crates. Tolerance helpers exist for a reason.
fn check_d2(ws: &Workspace, f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some(krate) = &f.krate else { return };
    if !ws.config.float_crates.contains(krate) || f.is_test_path {
        return;
    }
    for (line_no, line) in f.lines() {
        if f.is_test_line(line_no) {
            continue;
        }
        if line_has_float_cmp(line) {
            out.push(err(
                "D2",
                f,
                line_no,
                "direct ==/!= against a float literal; use stats::approx_eq / approx_zero \
                 so rounding cannot flip a verdict"
                    .to_string(),
            ));
        }
    }
}

/// Whether the line compares something to a float literal with ==/!=.
fn line_has_float_cmp(line: &str) -> bool {
    let b = line.as_bytes();
    for i in 0..b.len().saturating_sub(1) {
        let op = &b[i..i + 2];
        if op != b"==" && op != b"!=" {
            continue;
        }
        // Reject `<=`, `>=`, `===`-style neighbors defensively.
        if i > 0 && matches!(b[i - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if b.get(i + 2) == Some(&b'=') {
            continue;
        }
        if is_float_literal(&read_token_back(line, i))
            || is_float_literal(&read_token_fwd(line, i + 2))
        {
            return true;
        }
    }
    false
}

fn read_token_back(line: &str, end: usize) -> String {
    let b = line.as_bytes();
    let mut j = end;
    while j > 0 && b[j - 1] == b' ' {
        j -= 1;
    }
    let stop = j;
    while j > 0 && (is_ident(b[j - 1]) || b[j - 1] == b'.') {
        j -= 1;
    }
    line[j..stop].to_string()
}

fn read_token_fwd(line: &str, start: usize) -> String {
    let b = line.as_bytes();
    let mut j = start;
    while j < b.len() && b[j] == b' ' {
        j += 1;
    }
    let begin = j;
    while j < b.len() && (is_ident(b[j]) || b[j] == b'.') {
        j += 1;
    }
    line[begin..j].to_string()
}

/// `1.0`, `0.5f64`, `2.`, `3f32` — starts with a digit and has a dot or
/// float suffix.
fn is_float_literal(tok: &str) -> bool {
    let Some(first) = tok.bytes().next() else {
        return false;
    };
    first.is_ascii_digit() && (tok.contains('.') || tok.ends_with("f64") || tok.ends_with("f32"))
}

/// S1 — secret hygiene: no derived `Debug`/`PartialEq` on types whose
/// names mark them as key/share/opening material.
fn check_s1(ws: &Workspace, f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some(krate) = &f.krate else { return };
    if !ws.config.secret_crates.contains(krate) || f.is_test_path {
        return;
    }
    let text = &f.text;
    let mut from = 0usize;
    while let Some(at) = text[from..].find("#[derive(") {
        let start = from + at;
        from = start + 1;
        let list_start = start + "#[derive(".len();
        let Some(close) = text[list_start..].find(")]") else {
            continue;
        };
        let list = &text[list_start..list_start + close];
        let after = list_start + close;
        let Some(name) = next_type_name(&text[after..]) else {
            continue;
        };
        let line = 1 + text[..start].matches('\n').count();
        if f.is_test_line(line) || !is_secret_name(ws, &name) {
            continue;
        }
        for bad in ["Debug", "PartialEq"] {
            if list.split(',').any(|d| d.trim() == bad) {
                out.push(err(
                    "S1",
                    f,
                    line,
                    format!(
                        "derived `{bad}` on secret-bearing type `{name}`; implement a redacted \
                         Debug and constant-time equality (crypto::ct) instead"
                    ),
                ));
            }
        }
    }
}

/// The first `struct`/`enum` name after a derive attribute (skipping
/// other attributes and visibility).
fn next_type_name(text: &str) -> Option<String> {
    let window = &text[..text.len().min(400)];
    for kw in ["struct ", "enum "] {
        if let Some(at) = window.find(kw) {
            let rest = &window[at + kw.len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    None
}

fn is_secret_name(ws: &Workspace, name: &str) -> bool {
    ws.config
        .secret_suffixes
        .iter()
        .any(|s| name.ends_with(s.as_str()))
        || ws.config.extra_secret_types.iter().any(|t| t == name)
}

/// S2 — panic-free message handling: the engine files process
/// adversary-controlled input and must return typed errors.
fn check_s2(ws: &Workspace, f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const TOKENS: &[&str] = &[
        ".unwrap(",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
        "assert!",
        "assert_eq!",
        "assert_ne!",
    ];
    if !ws.config.engine_paths.iter().any(|p| p == &f.rel) {
        return;
    }
    for (line_no, line) in f.lines() {
        if f.is_test_line(line_no) {
            continue;
        }
        for token in TOKENS {
            if token_hit(line, token) {
                out.push(err(
                    "S2",
                    f,
                    line_no,
                    format!(
                        "`{}` in an engine message-handling path; adversarial input must \
                         surface as a typed EngineError, not a panic",
                        token.trim_matches(|c| c == '.' || c == '(')
                    ),
                ));
            }
        }
    }
}

/// R1 — experiment-registry conformance: `exp_*` bins, the
/// `ALL_EXPERIMENTS` registry, and EXPERIMENTS.md rows agree.
fn check_r1(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(lib) = ws.file_by_rel("crates/bench/src/lib.rs") else {
        return;
    };
    let Some((registered, reg_line)) = parse_registry(&lib.raw) else {
        out.push(err(
            "R1",
            lib,
            1,
            "crates/bench/src/lib.rs has no parseable ALL_EXPERIMENTS registry".to_string(),
        ));
        return;
    };
    let bins: Vec<(String, &SourceFile)> = ws
        .files
        .iter()
        .filter_map(|f| {
            let id = f
                .rel
                .strip_prefix("crates/bench/src/bin/exp_")?
                .strip_suffix(".rs")?;
            Some((id.to_string(), f))
        })
        .collect();
    let md_ids: Vec<String> = ws
        .experiments_md
        .as_deref()
        .map(experiments_md_ids)
        .unwrap_or_default();

    for id in &registered {
        if !bins.iter().any(|(b, _)| b == id) {
            out.push(err(
                "R1",
                lib,
                reg_line,
                format!("experiment `{id}` is registered in ALL_EXPERIMENTS but has no crates/bench/src/bin/exp_{id}.rs"),
            ));
        }
        if ws.experiments_md.is_some() && !md_ids.contains(id) {
            out.push(err(
                "R1",
                lib,
                reg_line,
                format!(
                    "experiment `{id}` is registered but missing from the EXPERIMENTS.md summary table"
                ),
            ));
        }
    }
    for (id, f) in &bins {
        if !registered.contains(id) {
            out.push(err(
                "R1",
                f,
                1,
                format!("bin exp_{id}.rs exists but `{id}` is not registered in ALL_EXPERIMENTS"),
            ));
        }
    }
    for id in &md_ids {
        if !registered.contains(id) {
            out.push(err(
                "R1",
                lib,
                reg_line,
                format!("EXPERIMENTS.md lists `{id}` but it is not registered in ALL_EXPERIMENTS"),
            ));
        }
    }

    // Scenario-dir leg: every scenarios/*.toml id must appear in the
    // EXPERIMENTS.md scenario table (and vice versa), stay inside the
    // `s_` namespace, and never collide with a static registry id.
    let raw_diag = |rel: &str, line: usize, message: String| Diagnostic {
        rule: "R1",
        severity: Severity::Error,
        rel: rel.to_string(),
        line,
        message,
    };
    let md_scenario_ids = ws
        .experiments_md
        .as_deref()
        .map(experiments_md_scenario_ids)
        .unwrap_or_default();
    let mut scenario_ids: Vec<String> = Vec::new();
    for (rel, raw) in &ws.scenario_files {
        let Some((id, line)) = scenario_file_id(raw) else {
            out.push(raw_diag(
                rel,
                1,
                "scenario file has no parseable `scenario.id` (string under [scenario])"
                    .to_string(),
            ));
            continue;
        };
        if registered.contains(&id) {
            out.push(raw_diag(
                rel,
                line,
                format!("scenario id `{id}` collides with a static ALL_EXPERIMENTS entry"),
            ));
        }
        if ws.experiments_md.is_some() && !md_scenario_ids.iter().any(|(m, _)| *m == id) {
            out.push(raw_diag(
                rel,
                line,
                format!(
                    "scenario `{id}` is missing from the EXPERIMENTS.md scenario table \
                     (`| {id} | … |` row)"
                ),
            ));
        }
        scenario_ids.push(id);
    }
    for (id, line) in &md_scenario_ids {
        if !scenario_ids.contains(id) {
            out.push(raw_diag(
                "EXPERIMENTS.md",
                *line,
                format!("EXPERIMENTS.md lists scenario `{id}` but no scenarios/*.toml declares it"),
            ));
        }
    }
}

/// Extracts `scenario.id` (and its line) from a scenario file, using the
/// same lenient TOML-subset reader the config loader uses — R1 anchors
/// lockstep diagnostics on the declaration even when the rest of the
/// file would not compile.
fn scenario_file_id(raw: &str) -> Option<(String, usize)> {
    fair_simlab::tomlish::parse_lenient(raw)
        .into_iter()
        .find_map(|item| match (item.key.as_str(), item.value) {
            ("scenario.id", fair_simlab::tomlish::Value::Str(s)) => Some((s, item.line)),
            _ => None,
        })
}

/// Scenario ids (and their 1-based lines) from `| s_… |` summary-table
/// rows in EXPERIMENTS.md. The `s_` prefix keeps these rows disjoint
/// from the `| E<k> |` rows [`experiments_md_ids`] reads.
fn experiments_md_scenario_ids(md: &str) -> Vec<(String, usize)> {
    let mut ids = Vec::new();
    for (i, line) in md.lines().enumerate() {
        let Some(rest) = line.strip_prefix("| s_") else {
            continue;
        };
        let tail: String = rest
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        if tail.is_empty() {
            continue;
        }
        let id = format!("s_{tail}");
        if !ids.iter().any(|(m, _)| *m == id) {
            ids.push((id, i + 1));
        }
    }
    ids
}

/// Extracts `ALL_EXPERIMENTS` entries (and the declaration line) from
/// raw bench-lib source.
fn parse_registry(raw: &str) -> Option<(Vec<String>, usize)> {
    let at = raw.find("ALL_EXPERIMENTS")?;
    let line = 1 + raw[..at].matches('\n').count();
    // Skip the type annotation's `[&str; N]` — the id list is the
    // bracket after `=`.
    let eq = at + raw[at..].find('=')?;
    let open = eq + raw[eq..].find('[')?;
    let close = open + raw[open..].find(']')?;
    let mut ids = Vec::new();
    let body = &raw[open + 1..close];
    let mut rest = body;
    while let Some(q1) = rest.find('"') {
        let Some(q2) = rest[q1 + 1..].find('"') else {
            break;
        };
        ids.push(rest[q1 + 1..q1 + 1 + q2].to_string());
        rest = &rest[q1 + 2 + q2..];
    }
    if ids.is_empty() {
        None
    } else {
        Some((ids, line))
    }
}

/// Experiment ids (`e1`, `e2`, …) from `| E<k> |` summary-table rows.
fn experiments_md_ids(md: &str) -> Vec<String> {
    let mut ids = Vec::new();
    for line in md.lines() {
        let Some(rest) = line.strip_prefix("| E") else {
            continue;
        };
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty() {
            let id = format!("e{digits}");
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
    }
    ids
}

/// R2 — every crate root (and the workspace root lib) forbids unsafe.
fn check_r2(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        let is_crate_root = f.rel == "src/lib.rs"
            || (f.rel.starts_with("crates/") && f.rel.ends_with("/src/lib.rs"));
        if !is_crate_root {
            continue;
        }
        if let Some(k) = &f.krate {
            if ws.config.unsafe_allow_crates.contains(k) {
                continue;
            }
        }
        if !f.text.contains("#![forbid(unsafe_code)]") {
            out.push(err(
                "R2",
                f,
                1,
                "crate root lacks #![forbid(unsafe_code)] (add it or list the crate in \
                 fairlint.toml [rules.R2] allow_crates)"
                    .to_string(),
            ));
        }
    }
}

/// R3 — no `todo!`/`unimplemented!` outside tests, workspace-wide.
fn check_r3(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.is_test_path {
        return;
    }
    for (line_no, line) in f.lines() {
        if f.is_test_line(line_no) {
            continue;
        }
        for token in ["todo!", "unimplemented!"] {
            if token_hit(line, token) {
                out.push(err(
                    "R3",
                    f,
                    line_no,
                    format!("`{token}` in non-test code; finish it or return a typed error"),
                ));
            }
        }
    }
}

/// R4 — environment reads (`env::var*`) only in allowlisted files; the
/// rest of the workspace goes through `fair_simlab::config`.
fn check_r4(ws: &Workspace, f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.is_test_path || ws.config.env_allow_paths.iter().any(|p| p == &f.rel) {
        return;
    }
    for (line_no, line) in f.lines() {
        if f.is_test_line(line_no) {
            continue;
        }
        for token in ["env::var(", "env::var_os(", "env::vars(", "env::vars_os("] {
            if token_hit(line, token) {
                out.push(err(
                    "R4",
                    f,
                    line_no,
                    format!(
                        "direct environment read `{}` outside the sanctioned entry point; \
                         use fair_simlab::config::env_usize (or allowlist the file in \
                         fairlint.toml [allow.R4])",
                        token.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}

/// R5 — scope coverage: every workspace member declared in the root
/// `Cargo.toml` is named by at least one `fairlint.toml` crate scope
/// (the D1 boundary, D2 float crates, S1 secret crates, T1 trace
/// crates) or by the explicit `[rules.R5] allow_crates` list. New
/// crates cannot slip into the workspace unsupervised.
fn check_r5(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let scoped = |m: &String| {
        ws.config.boundary_crates.contains(m)
            || ws.config.float_crates.contains(m)
            || ws.config.secret_crates.contains(m)
            || ws.config.trace_crates.contains(m)
            || ws.config.r5_allow_crates.contains(m)
    };
    for member in &ws.members {
        if !scoped(member) {
            out.push(Diagnostic {
                rule: "R5",
                severity: Severity::Error,
                rel: "Cargo.toml".to_string(),
                line: ws.members_line,
                message: format!(
                    "workspace member `{member}` (crates/{member}) appears in no fairlint.toml \
                     crate scope; place it under a rule's scope or list it in [rules.R5] \
                     allow_crates"
                ),
            });
        }
    }
}

/// L1 — suppression hygiene: every `fairlint::allow` names known rules
/// and carries a non-empty reason.
fn check_l1(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for s in &f.suppressions {
        if s.reason.is_none() {
            out.push(err(
                "L1",
                f,
                s.line,
                format!(
                    "suppression `fairlint::allow({})` is missing the mandatory reason = \"...\"",
                    s.raw
                ),
            ));
        }
        if s.rules.is_empty() {
            out.push(err(
                "L1",
                f,
                s.line,
                "suppression names no rule id".to_string(),
            ));
        }
        for id in &s.rules {
            if !known_rule(id) {
                out.push(err(
                    "L1",
                    f,
                    s.line,
                    format!("suppression names unknown rule `{id}`"),
                ));
            }
        }
    }
}

/// T1 — tracing discipline: the engine and protocol crates may not write
/// to stdout/stderr directly; execution observability goes through the
/// `fair_trace::Tracer` threaded by `execute_traced`, so recorded
/// transcripts stay the single source of diagnostic truth.
fn check_t1(ws: &Workspace, f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const TOKENS: &[&str] = &["print!", "println!", "eprint!", "eprintln!", "dbg!"];
    let Some(krate) = &f.krate else { return };
    if !ws.config.trace_crates.contains(krate) || f.is_test_path {
        return;
    }
    for (line_no, line) in f.lines() {
        if f.is_test_line(line_no) {
            continue;
        }
        for token in TOKENS {
            if token_hit(line, token) {
                out.push(err(
                    "T1",
                    f,
                    line_no,
                    format!(
                        "`{token}` in crate `{krate}`; engine/protocol code emits diagnostics \
                         through the fair-trace Tracer so transcripts capture them"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(token_hit("let t = Instant::now();", "Instant::now"));
        assert!(!token_hit("let t = MyInstant::nowish();", "Instant::now"));
        assert!(token_hit("x.unwrap()", ".unwrap("));
        assert!(!token_hit("x.unwrap_or(y)", ".unwrap("));
        assert!(token_hit("assert!(x)", "assert!"));
        assert!(!token_hit("debug_assert!(x)", "assert!"));
        assert!(token_hit("std::env::var(\"X\")", "env::var("));
        assert!(!token_hit("env::var_os(\"X\")", "env::var("));
    }

    #[test]
    fn float_cmp_detection() {
        assert!(line_has_float_cmp("if x == 0.0 {"));
        assert!(line_has_float_cmp("if 1.5f64 != y {"));
        assert!(line_has_float_cmp("assert(a.rate() == 0.25);"));
        assert!(!line_has_float_cmp("if n == 0 {"));
        assert!(!line_has_float_cmp("if a <= 0.5 {"));
        assert!(!line_has_float_cmp("if tuple.0 == other.0 {"));
        assert!(!line_has_float_cmp("let eq = a == b;"));
    }

    #[test]
    fn registry_parsing() {
        let (ids, line) = parse_registry(
            "//! docs\npub const ALL_EXPERIMENTS: [&str; 3] = [\n    \"e1\", \"e2\",\n    \"e10\",\n];\n",
        )
        .expect("parses");
        assert_eq!(ids, vec!["e1", "e2", "e10"]);
        assert_eq!(line, 2);
    }

    #[test]
    fn experiments_md_rows() {
        let ids = experiments_md_ids("| Exp | x |\n| E1 | a |\n| E13 | b |\n| Emp | c |\n");
        assert_eq!(ids, vec!["e1", "e13"]);
    }

    #[test]
    fn rule_ids_are_unique_and_known() {
        for r in RULES {
            assert!(known_rule(r.id));
        }
        let mut ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len());
    }

    #[test]
    fn every_rule_documents_rationale_and_fix() {
        for r in RULES {
            assert!(!r.rationale.is_empty(), "{} lacks a rationale", r.id);
            assert!(!r.fix.is_empty(), "{} lacks a fix", r.id);
        }
    }

    #[test]
    fn diagnostic_order_is_total() {
        // Same (path, line, rule) still orders deterministically via the
        // message tiebreak, so shuffled inputs sort identically.
        use crate::diag::Severity;
        let mk = |line: usize, rule: &'static str, msg: &str| Diagnostic {
            rule,
            severity: Severity::Error,
            rel: "a.rs".to_string(),
            line,
            message: msg.to_string(),
        };
        let mut a = vec![
            mk(3, "C2", "site `b` then `a`"),
            mk(3, "C2", "site `a` then `b`"),
            mk(1, "D1", "x"),
        ];
        let mut b: Vec<_> = a.iter().cloned().rev().collect();
        for v in [&mut a, &mut b] {
            v.sort_by(|x, y| {
                (&x.rel, x.line, x.rule, &x.message).cmp(&(&y.rel, y.line, y.rule, &y.message))
            });
        }
        let render = |v: &[Diagnostic]| v.iter().map(|d| d.message.clone()).collect::<Vec<_>>();
        assert_eq!(render(&a), render(&b));
        assert_eq!(a[0].rule, "D1");
        assert_eq!(a[1].message, "site `a` then `b`");
    }
}
