//! Regression gate: fairlint on the real workspace reports zero
//! violations. Any future wall-clock read, derived Debug on key
//! material, unregistered experiment, or reasonless suppression breaks
//! this test (and `ci.sh`, which runs the binary in `--strict` mode).

use std::path::Path;

use fairlint::Workspace;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let ws = Workspace::load(&root).expect("workspace loads");
    // Sanity: this really is the repo (the walker saw the whole tree).
    assert!(ws.files.len() > 100, "only {} files found", ws.files.len());
    assert!(ws.experiments_md.is_some(), "EXPERIMENTS.md missing");
    let diags = ws.analyze();
    assert!(
        diags.is_empty(),
        "fairlint found {} violation(s) in the workspace:\n{}",
        diags.len(),
        diags
            .iter()
            .map(fairlint::Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_workspace_config_scopes_the_boundary() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let ws = Workspace::load(&root).expect("workspace loads");
    // fairlint.toml is checked in and actually loaded: the boundary
    // covers the protocol stack, and the one sanctioned env entry
    // point is allowlisted.
    for krate in [
        "core",
        "protocols",
        "runtime",
        "crypto",
        "field",
        "circuits",
    ] {
        assert!(ws.config.boundary_crates.iter().any(|c| c == krate));
    }
    assert!(ws
        .config
        .env_allow_paths
        .iter()
        .any(|p| p == "crates/simlab/src/config.rs"));
    assert!(ws.config.extra_secret_types.iter().any(|t| t == "Prg"));
    // The serving layer is supervised: its request parser and handler
    // are S2 (panic-free) paths, the library itself is T1 (no direct
    // stdout/stderr), and every workspace member is either scoped or
    // deliberately allowlisted for R5.
    for path in ["crates/serve/src/http.rs", "crates/serve/src/service.rs"] {
        assert!(
            ws.config.engine_paths.iter().any(|p| p == path),
            "{path} missing from rules.S2.paths"
        );
    }
    assert!(ws.config.trace_crates.iter().any(|c| c == "serve"));
    assert!(ws.config.boundary_crates.iter().any(|c| c == "sfe"));
    assert!(ws.members.iter().any(|m| m == "serve"));
    assert!(ws.config.r5_allow_crates.iter().any(|c| c == "rand"));
}
