//! Regression gate: fairlint on the real workspace reports zero
//! violations. Any future wall-clock read, derived Debug on key
//! material, unregistered experiment, or reasonless suppression breaks
//! this test (and `ci.sh`, which runs the binary in `--strict` mode).

use std::path::Path;

use fairlint::Workspace;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let ws = Workspace::load(&root).expect("workspace loads");
    // Sanity: this really is the repo (the walker saw the whole tree).
    assert!(ws.files.len() > 100, "only {} files found", ws.files.len());
    assert!(ws.experiments_md.is_some(), "EXPERIMENTS.md missing");
    let diags = ws.analyze();
    assert!(
        diags.is_empty(),
        "fairlint found {} violation(s) in the workspace:\n{}",
        diags.len(),
        diags
            .iter()
            .map(fairlint::Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_workspace_config_scopes_the_boundary() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let ws = Workspace::load(&root).expect("workspace loads");
    // fairlint.toml is checked in and actually loaded: the boundary
    // covers the protocol stack, and the one sanctioned env entry
    // point is allowlisted.
    for krate in [
        "core",
        "protocols",
        "runtime",
        "crypto",
        "field",
        "circuits",
    ] {
        assert!(ws.config.boundary_crates.iter().any(|c| c == krate));
    }
    assert!(ws
        .config
        .env_allow_paths
        .iter()
        .any(|p| p == "crates/simlab/src/config.rs"));
    assert!(ws.config.extra_secret_types.iter().any(|t| t == "Prg"));
    // The serving layer is supervised: its request parser and handler
    // are S2 (panic-free) paths, the library itself is T1 (no direct
    // stdout/stderr), and every workspace member is either scoped or
    // deliberately allowlisted for R5.
    for path in [
        "crates/serve/src/http.rs",
        "crates/serve/src/server.rs",
        "crates/serve/src/service.rs",
    ] {
        assert!(
            ws.config.engine_paths.iter().any(|p| p == path),
            "{path} missing from rules.S2.paths"
        );
    }
    assert!(ws.config.trace_crates.iter().any(|c| c == "serve"));
    assert!(ws.config.boundary_crates.iter().any(|c| c == "sfe"));
    assert!(ws.members.iter().any(|m| m == "serve"));
    assert!(ws.config.r5_allow_crates.iter().any(|c| c == "rand"));
    // Concurrency rules are configured: the guard-helper idiom is
    // known, C3 walks two hops, and each proven-total allowlist entry
    // names a real qualified function.
    assert!(ws.config.c1_guard_helpers.iter().any(|h| h == "lock"));
    assert_eq!(ws.config.c3_depth, 2);
    assert!(ws
        .config
        .c3_allow_fns
        .iter()
        .any(|f| f == "serve::cache::ShardedCache::shard_for"));
    let g = fairlint::graph::build(&ws);
    for allowed in &ws.config.c3_allow_fns {
        assert!(
            g.by_qname(allowed).is_some(),
            "[rules.C3] allow_fns entry `{allowed}` matches no workspace function"
        );
    }
}

#[test]
fn the_workspace_graph_covers_every_member_crate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let ws = Workspace::load(&root).expect("workspace loads");
    let g = fairlint::graph::build(&ws);
    for member in &ws.members {
        assert!(
            g.symbols
                .iter()
                .any(|s| s.item.krate.as_deref() == Some(member)),
            "crate `{member}` contributes no symbols to the call graph"
        );
    }
    assert!(
        !g.edges.is_empty(),
        "the workspace graph resolved no call edges at all"
    );
}
