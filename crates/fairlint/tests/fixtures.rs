//! Fixture-driven end-to-end tests: every rule fires on the offending
//! mini-workspace (`ws_bad`), every suppression/allowlist mechanism
//! silences the mirrored one (`ws_ok`), and the binary's exit codes and
//! JSON output hold their contract.

use std::path::{Path, PathBuf};
use std::process::Command;

use fairlint::{render_json_report, Diagnostic, Workspace, RULES};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str) -> Vec<Diagnostic> {
    Workspace::load(&fixture(name))
        .expect("fixture loads")
        .analyze()
}

#[test]
fn every_rule_fires_on_ws_bad() {
    let diags = analyze("ws_bad");
    for rule in RULES {
        assert!(
            diags.iter().any(|d| d.rule == rule.id),
            "rule {} produced no diagnostic on ws_bad; got: {:#?}",
            rule.id,
            diags
        );
    }
}

#[test]
fn ws_bad_diagnostics_land_on_the_right_lines() {
    let diags = analyze("ws_bad");
    let has = |rule: &str, rel: &str, line: usize| {
        diags
            .iter()
            .any(|d| d.rule == rule && d.rel == rel && d.line == line)
    };
    assert!(has("D1", "crates/core/src/lib.rs", 8), "{diags:#?}");
    assert!(has("D2", "crates/core/src/lib.rs", 12));
    assert!(has("R3", "crates/core/src/lib.rs", 17));
    assert!(has("R4", "crates/core/src/lib.rs", 21));
    assert!(has("S1", "crates/crypto/src/lib.rs", 3));
    assert!(has("S2", "crates/runtime/src/engine.rs", 2)); // assert!
    assert!(has("S2", "crates/runtime/src/engine.rs", 3)); // .unwrap(
    assert!(has("T1", "crates/runtime/src/engine.rs", 9)); // eprintln!
    assert!(has("R2", "crates/norust/src/lib.rs", 1));
    // R5 anchors on the root manifest's `members = [...]` line.
    assert!(has("R5", "Cargo.toml", 5));
    // L1: the reasonless allow and the unknown-rule allow.
    assert!(has("L1", "crates/core/src/lib.rs", 6));
    assert!(has("L1", "crates/core/src/lib.rs", 15));
    // C1: a direct blocking write under the `jobs` guard, and a call
    // one hop into a helper that does file IO.
    assert!(has("C1", "crates/runtime/src/pool.rs", 13));
    assert!(has("C1", "crates/runtime/src/pool.rs", 18));
    // C2: both directions of the jobs/done conflict, each at its
    // nested-acquisition line.
    assert!(has("C2", "crates/runtime/src/pool.rs", 23));
    assert!(has("C2", "crates/runtime/src/pool.rs", 28));
    // C3: the engine's panic-free file reaches `helpers::pick` (depth
    // 1) and `helpers::inner` via `deep` (depth 2), both flagged at
    // the root call line.
    assert!(has("C3", "crates/runtime/src/engine.rs", 13));
}

#[test]
fn ws_bad_c_rules_report_both_reach_depths() {
    let diags = analyze("ws_bad");
    let c3: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "C3")
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        c3.iter().any(|m| m.contains("`runtime::helpers::pick`")),
        "{c3:?}"
    );
    assert!(
        c3.iter().any(|m| m.contains("`runtime::helpers::inner`")
            && m.contains("via `runtime::helpers::deep`")),
        "depth-2 finding should cite its call chain: {c3:?}"
    );
    let c1: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "C1")
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        c1.iter()
            .any(|m| m.contains("`runtime::pool::persist`") && m.contains("file write")),
        "one-call-deep C1 should name the blocking callee: {c1:?}"
    );
}

#[test]
fn ws_bad_unscoped_member_names_the_crate() {
    let diags = analyze("ws_bad");
    let r5: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "R5")
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        r5.iter().any(|m| m.contains("`norust`")),
        "R5 should flag the unscoped member: {r5:?}"
    );
    // The scoped members (bench/core/crypto/runtime under the default
    // config) are covered and stay quiet.
    assert!(!r5.iter().any(|m| m.contains("`core`")), "{r5:?}");
}

#[test]
fn ws_bad_registry_violations_cover_all_three_directions() {
    let diags = analyze("ws_bad");
    let r1: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "R1")
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        r1.iter()
            .any(|m| m.contains("`e2`") && m.contains("no crates/bench/src/bin/exp_e2.rs")),
        "{r1:?}"
    );
    assert!(r1
        .iter()
        .any(|m| m.contains("`e2`") && m.contains("EXPERIMENTS.md")));
    assert!(r1
        .iter()
        .any(|m| m.contains("exp_e3.rs") && m.contains("not registered")));
    assert!(r1
        .iter()
        .any(|m| m.contains("`e9`") && m.contains("not registered")));
}

#[test]
fn ws_bad_scenario_lockstep_violations_fire() {
    let diags = analyze("ws_bad");
    let has = |rel: &str, line: usize, needle: &str| {
        diags
            .iter()
            .any(|d| d.rule == "R1" && d.rel == rel && d.line == line && d.message.contains(needle))
    };
    // A valid id with no EXPERIMENTS.md row, anchored on the id line.
    assert!(
        has(
            "scenarios/orphan.toml",
            3,
            "missing from the EXPERIMENTS.md"
        ),
        "{diags:#?}"
    );
    // A file with no parseable id.
    assert!(
        has("scenarios/noid.toml", 1, "no parseable `scenario.id`"),
        "{diags:#?}"
    );
    // An id colliding with the static registry.
    assert!(
        has("scenarios/collide.toml", 3, "collides with a static"),
        "{diags:#?}"
    );
    // An md row no file declares, anchored on the row.
    assert!(
        has("EXPERIMENTS.md", 7, "no scenarios/*.toml declares it"),
        "{diags:#?}"
    );
}

#[test]
fn ws_bad_does_not_flag_test_code_or_debug_assert() {
    let diags = analyze("ws_bad");
    // The #[cfg(test)] mod in core/src/lib.rs repeats every sin.
    assert!(diags
        .iter()
        .all(|d| d.line < 24 || d.rel != "crates/core/src/lib.rs"));
    // debug_assert! in engine.rs line 4 is fine.
    assert!(!diags
        .iter()
        .any(|d| d.rel == "crates/runtime/src/engine.rs" && d.line == 4));
}

#[test]
fn ws_ok_is_fully_suppressed() {
    let diags = analyze("ws_ok");
    assert!(diags.is_empty(), "expected clean, got: {diags:#?}");
}

#[test]
fn json_report_shape() {
    let diags = analyze("ws_bad");
    let json = render_json_report(&diags);
    assert!(json.starts_with("{\"version\":1,\"count\":"));
    for key in [
        "\"rule\":",
        "\"severity\":",
        "\"path\":",
        "\"line\":",
        "\"message\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Every diagnostic appears exactly once.
    assert_eq!(json.matches("\"rule\":").count(), diags.len());
}

fn run_bin(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fairlint"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exit_codes() {
    let bad = fixture("ws_bad");
    let ok = fixture("ws_ok");
    // Report-only run: exit 0 even with violations.
    assert_eq!(run_bin(&["--root", bad.to_str().unwrap()]).0, Some(0));
    // Strict: violations are fatal...
    assert_eq!(
        run_bin(&["--root", bad.to_str().unwrap(), "--strict"]).0,
        Some(1)
    );
    // ...clean trees are not.
    assert_eq!(
        run_bin(&["--root", ok.to_str().unwrap(), "--strict"]).0,
        Some(0)
    );
    // Usage errors are 2.
    assert_eq!(run_bin(&["--no-such-flag"]).0, Some(2));
    assert_eq!(run_bin(&["--root", "/no/such/dir"]).0, Some(2));
}

#[test]
fn binary_list_rules_names_every_rule() {
    let (code, stdout) = run_bin(&["--list-rules"]);
    assert_eq!(code, Some(0));
    for rule in RULES {
        assert!(
            stdout.contains(rule.id),
            "missing {} in:\n{stdout}",
            rule.id
        );
    }
}

#[test]
fn binary_json_flag_emits_the_report() {
    let bad = fixture("ws_bad");
    let (code, stdout) = run_bin(&["--root", bad.to_str().unwrap(), "--json"]);
    assert_eq!(code, Some(0));
    assert!(stdout.trim_start().starts_with("{\"version\":1,"));
    assert!(stdout.contains("\"rule\":\"D1\""));
}

#[test]
fn binary_explain_covers_every_rule_and_rejects_unknown() {
    for rule in RULES {
        let (code, stdout) = run_bin(&["--explain", rule.id]);
        assert_eq!(code, Some(0), "--explain {} failed", rule.id);
        assert!(stdout.contains(rule.summary), "{stdout}");
        assert!(stdout.contains("why:"), "{stdout}");
        assert!(stdout.contains("fix:"), "{stdout}");
    }
    // Case-insensitive lookup, unknown rules are usage errors.
    assert_eq!(run_bin(&["--explain", "c1"]).0, Some(0));
    assert_eq!(run_bin(&["--explain", "Z9"]).0, Some(2));
}

#[test]
fn binary_graph_is_deterministic_and_covers_the_fixture() {
    let bad = fixture("ws_bad");
    let root = bad.to_str().unwrap();
    let (code, first) = run_bin(&["--root", root, "--graph", "json"]);
    assert_eq!(code, Some(0));
    let (_, second) = run_bin(&["--root", root, "--graph", "json"]);
    assert_eq!(first, second, "graph JSON must be byte-identical");
    assert!(first.starts_with("{\"version\":1,"));
    for needle in [
        "\"runtime::helpers::pick\"",
        "\"runtime::pool::Pool::drain\"",
        "\"what\":\"indexing\"",
        "\"what\":\"socket/file write\"",
        "\"certain\":true",
    ] {
        assert!(first.contains(needle), "missing {needle} in graph JSON");
    }
    let (code, dot) = run_bin(&["--root", root, "--graph", "dot"]);
    assert_eq!(code, Some(0));
    assert!(dot.starts_with("digraph fairlint {"));
    assert!(dot.contains("\"runtime::engine::settle\" -> \"runtime::helpers::pick\""));
    // Bad format is a usage error.
    assert_eq!(run_bin(&["--graph", "svg"]).0, Some(2));
}

#[test]
fn binary_baseline_write_then_check_absorbs_existing_findings() {
    // Copy ws_bad into a temp dir so the committed fixture stays
    // pristine while the baseline file is written next to it.
    let src = fixture("ws_bad");
    let dir = std::env::temp_dir().join("fairlint_baseline_test_ws");
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(&src, &dir);
    let root = dir.to_str().unwrap();

    // Strict fails before the baseline exists...
    assert_eq!(run_bin(&["--root", root, "--strict"]).0, Some(1));
    // ...writing one records every current violation...
    assert_eq!(run_bin(&["--root", root, "--baseline", "write"]).0, Some(0));
    let recorded = std::fs::read_to_string(dir.join("fairlint.baseline")).expect("baseline file");
    assert!(recorded.contains("C1\tcrates/runtime/src/pool.rs\t2"));
    // ...after which strict+check passes, reporting zero new findings.
    assert_eq!(
        run_bin(&["--root", root, "--strict", "--baseline", "check"]).0,
        Some(0)
    );
    let (_, stdout) = run_bin(&["--root", root, "--baseline", "check", "--json"]);
    assert!(stdout.contains("\"count\":0"), "{stdout}");

    // A brand-new violation still fails strict under the old baseline.
    let lib = dir.join("crates/core/src/lib.rs");
    let mut text = std::fs::read_to_string(&lib).expect("fixture file");
    text.push_str("\npub fn fresh() { std::thread::sleep(std::time::Duration::from_millis(1)); let _ = std::time::Instant::now(); }\n");
    std::fs::write(&lib, text).expect("writable temp fixture");
    assert_eq!(
        run_bin(&["--root", root, "--strict", "--baseline", "check"]).0,
        Some(1)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("readdir") {
        let entry = entry.expect("entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy");
        }
    }
}
