//! Fixture-driven end-to-end tests: every rule fires on the offending
//! mini-workspace (`ws_bad`), every suppression/allowlist mechanism
//! silences the mirrored one (`ws_ok`), and the binary's exit codes and
//! JSON output hold their contract.

use std::path::{Path, PathBuf};
use std::process::Command;

use fairlint::{render_json_report, Diagnostic, Workspace, RULES};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str) -> Vec<Diagnostic> {
    Workspace::load(&fixture(name))
        .expect("fixture loads")
        .analyze()
}

#[test]
fn every_rule_fires_on_ws_bad() {
    let diags = analyze("ws_bad");
    for rule in RULES {
        assert!(
            diags.iter().any(|d| d.rule == rule.id),
            "rule {} produced no diagnostic on ws_bad; got: {:#?}",
            rule.id,
            diags
        );
    }
}

#[test]
fn ws_bad_diagnostics_land_on_the_right_lines() {
    let diags = analyze("ws_bad");
    let has = |rule: &str, rel: &str, line: usize| {
        diags
            .iter()
            .any(|d| d.rule == rule && d.rel == rel && d.line == line)
    };
    assert!(has("D1", "crates/core/src/lib.rs", 8), "{diags:#?}");
    assert!(has("D2", "crates/core/src/lib.rs", 12));
    assert!(has("R3", "crates/core/src/lib.rs", 17));
    assert!(has("R4", "crates/core/src/lib.rs", 21));
    assert!(has("S1", "crates/crypto/src/lib.rs", 3));
    assert!(has("S2", "crates/runtime/src/engine.rs", 2)); // assert!
    assert!(has("S2", "crates/runtime/src/engine.rs", 3)); // .unwrap(
    assert!(has("T1", "crates/runtime/src/engine.rs", 9)); // eprintln!
    assert!(has("R2", "crates/norust/src/lib.rs", 1));
    // R5 anchors on the root manifest's `members = [...]` line.
    assert!(has("R5", "Cargo.toml", 5));
    // L1: the reasonless allow and the unknown-rule allow.
    assert!(has("L1", "crates/core/src/lib.rs", 6));
    assert!(has("L1", "crates/core/src/lib.rs", 15));
}

#[test]
fn ws_bad_unscoped_member_names_the_crate() {
    let diags = analyze("ws_bad");
    let r5: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "R5")
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        r5.iter().any(|m| m.contains("`norust`")),
        "R5 should flag the unscoped member: {r5:?}"
    );
    // The scoped members (bench/core/crypto/runtime under the default
    // config) are covered and stay quiet.
    assert!(!r5.iter().any(|m| m.contains("`core`")), "{r5:?}");
}

#[test]
fn ws_bad_registry_violations_cover_all_three_directions() {
    let diags = analyze("ws_bad");
    let r1: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "R1")
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        r1.iter()
            .any(|m| m.contains("`e2`") && m.contains("no crates/bench/src/bin/exp_e2.rs")),
        "{r1:?}"
    );
    assert!(r1
        .iter()
        .any(|m| m.contains("`e2`") && m.contains("EXPERIMENTS.md")));
    assert!(r1
        .iter()
        .any(|m| m.contains("exp_e3.rs") && m.contains("not registered")));
    assert!(r1
        .iter()
        .any(|m| m.contains("`e9`") && m.contains("not registered")));
}

#[test]
fn ws_bad_does_not_flag_test_code_or_debug_assert() {
    let diags = analyze("ws_bad");
    // The #[cfg(test)] mod in core/src/lib.rs repeats every sin.
    assert!(diags
        .iter()
        .all(|d| d.line < 24 || d.rel != "crates/core/src/lib.rs"));
    // debug_assert! in engine.rs line 4 is fine.
    assert!(!diags
        .iter()
        .any(|d| d.rel == "crates/runtime/src/engine.rs" && d.line == 4));
}

#[test]
fn ws_ok_is_fully_suppressed() {
    let diags = analyze("ws_ok");
    assert!(diags.is_empty(), "expected clean, got: {diags:#?}");
}

#[test]
fn json_report_shape() {
    let diags = analyze("ws_bad");
    let json = render_json_report(&diags);
    assert!(json.starts_with("{\"version\":1,\"count\":"));
    for key in [
        "\"rule\":",
        "\"severity\":",
        "\"path\":",
        "\"line\":",
        "\"message\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Every diagnostic appears exactly once.
    assert_eq!(json.matches("\"rule\":").count(), diags.len());
}

fn run_bin(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fairlint"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exit_codes() {
    let bad = fixture("ws_bad");
    let ok = fixture("ws_ok");
    // Report-only run: exit 0 even with violations.
    assert_eq!(run_bin(&["--root", bad.to_str().unwrap()]).0, Some(0));
    // Strict: violations are fatal...
    assert_eq!(
        run_bin(&["--root", bad.to_str().unwrap(), "--strict"]).0,
        Some(1)
    );
    // ...clean trees are not.
    assert_eq!(
        run_bin(&["--root", ok.to_str().unwrap(), "--strict"]).0,
        Some(0)
    );
    // Usage errors are 2.
    assert_eq!(run_bin(&["--no-such-flag"]).0, Some(2));
    assert_eq!(run_bin(&["--root", "/no/such/dir"]).0, Some(2));
}

#[test]
fn binary_list_rules_names_every_rule() {
    let (code, stdout) = run_bin(&["--list-rules"]);
    assert_eq!(code, Some(0));
    for rule in RULES {
        assert!(
            stdout.contains(rule.id),
            "missing {} in:\n{stdout}",
            rule.id
        );
    }
}

#[test]
fn binary_json_flag_emits_the_report() {
    let bad = fixture("ws_bad");
    let (code, stdout) = run_bin(&["--root", bad.to_str().unwrap(), "--json"]);
    assert_eq!(code, Some(0));
    assert!(stdout.trim_start().starts_with("{\"version\":1,"));
    assert!(stdout.contains("\"rule\":\"D1\""));
}
