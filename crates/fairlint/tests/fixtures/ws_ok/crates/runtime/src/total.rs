//! A helper that can panic syntactically (the indexing) but is total
//! by invariant — the empty case returns early. Allowlisted in this
//! fixture's fairlint.toml under [rules.C3] allow_fns.

pub fn pick(xs: &[u8]) -> u8 {
    if xs.is_empty() {
        return 0;
    }
    xs[0]
}
