//! Mirrors ws_bad's pool: the blocking write is either restructured
//! (guard dropped before IO) or inline-suppressed, and the opposite
//! lock orders carry documented suppressions.
use std::io::Write;
use std::sync::Mutex;

pub struct Pool {
    jobs: Mutex<Vec<u8>>,
    done: Mutex<u8>,
}

impl Pool {
    pub fn drain(&self, out: &mut std::net::TcpStream) {
        let g = self.jobs.lock().unwrap();
        let snapshot = g.clone();
        drop(g);
        let _ = out.write_all(&snapshot); // guard already dead: no C1
    }

    pub fn flush_hot(&self, out: &mut std::net::TcpStream) {
        let g = self.jobs.lock().unwrap();
        // fairlint::allow(C1, reason = "fixture: single-threaded harness, nothing contends for jobs")
        let _ = out.write_all(&g);
    }

    pub fn forward(&self) {
        let _jobs = self.jobs.lock().unwrap();
        // fairlint::allow(C2, reason = "fixture: documented global order is jobs before done")
        let _done = self.done.lock().unwrap();
    }

    pub fn backward(&self) {
        let _done = self.done.lock().unwrap();
        // fairlint::allow(C2, reason = "fixture: shutdown path, the jobs lock is free by then")
        let _jobs = self.jobs.lock().unwrap();
    }
}
