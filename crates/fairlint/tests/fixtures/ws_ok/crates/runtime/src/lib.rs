#![forbid(unsafe_code)]
pub mod engine;
pub mod pool;
pub mod total;
