pub fn deliver(msgs: &[u8]) -> u8 {
    // fairlint::allow(S2, reason = "fixture: empty slice is unreachable by construction")
    let first = msgs.first().unwrap();
    debug_assert!(*first < 250);
    *first
}

pub fn trace_fallback(round: usize) {
    // fairlint::allow(T1, reason = "fixture: legacy diagnostic pending Tracer port")
    eprintln!("round {round}");
}

pub fn settle(xs: &[u8]) -> u8 {
    // `total::pick` has an indexing fact but is allowlisted as proven
    // total in this fixture's fairlint.toml, so C3 stays quiet.
    crate::total::pick(xs)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        assert_eq!(super::deliver(&[1]), 1);
        [1u8].first().unwrap();
    }
}
