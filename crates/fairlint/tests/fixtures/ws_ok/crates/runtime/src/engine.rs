pub fn deliver(msgs: &[u8]) -> u8 {
    // fairlint::allow(S2, reason = "fixture: empty slice is unreachable by construction")
    let first = msgs.first().unwrap();
    debug_assert!(*first < 250);
    *first
}

pub fn trace_fallback(round: usize) {
    // fairlint::allow(T1, reason = "fixture: legacy diagnostic pending Tracer port")
    eprintln!("round {round}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        assert_eq!(super::deliver(&[1]), 1);
        [1u8].first().unwrap();
    }
}
