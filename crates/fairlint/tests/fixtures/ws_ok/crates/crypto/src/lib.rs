#![forbid(unsafe_code)]

// fairlint::allow(S1, reason = "fixture: derived Debug kept to prove suppression works")
#[derive(Clone, Debug, PartialEq)]
pub struct MacKey(pub [u8; 32]);

// Non-secret names may derive freely.
#[derive(Clone, Debug, PartialEq)]
pub struct Commitment(pub [u8; 32]);
