#![forbid(unsafe_code)]
pub mod env;

pub fn wallclock() -> std::time::Instant {
    // fairlint::allow(D1, reason = "fixture: demonstrating a justified wall-clock read")
    std::time::Instant::now()
}

pub fn float_eq(x: f64) -> bool {
    x == 0.5 // fairlint::allow(D2, reason = "fixture: exact sentinel compare")
}

pub fn unfinished() {
    todo!() // fairlint::allow(R3, reason = "fixture: placeholder kept on purpose")
}
