// This file is allowlisted for rule R4 in the fixture's fairlint.toml:
// it plays the role of the one sanctioned environment entry point.
pub fn knob(name: &str) -> Option<String> {
    std::env::var(name).ok()
}
