pub fn allowlisted_crate_without_the_attribute() {}
