fn main() {}
