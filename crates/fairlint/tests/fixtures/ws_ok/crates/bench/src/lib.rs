#![forbid(unsafe_code)]
pub const ALL_EXPERIMENTS: [&str; 1] = ["e1"];
