pub fn no_forbid_attribute_here() {}
