fn main() {}
