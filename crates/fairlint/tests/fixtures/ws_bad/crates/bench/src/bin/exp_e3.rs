fn main() {}
