#![forbid(unsafe_code)]
// e2 is registered but has no bin and no EXPERIMENTS.md row; exp_e3.rs
// exists but is unregistered; the md lists e9 which nobody registered.
pub const ALL_EXPERIMENTS: [&str; 2] = ["e1", "e2"];
