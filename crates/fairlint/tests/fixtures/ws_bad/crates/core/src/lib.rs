#![forbid(unsafe_code)]
// One violation of each file-scoped rule D1, D2, R3, R4 — plus two
// broken suppressions for L1. Comment mentions like Instant::now here
// must NOT trip rules (the lexer scrubs comments).

// fairlint::allow(D1)
pub fn wallclock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn float_eq(x: f64) -> bool {
    x == 0.5
}

// fairlint::allow(ZZ9, reason = "no such rule")
pub fn unfinished() {
    todo!()
}

pub fn env_read() -> Option<String> {
    std::env::var("FAIR_TRIALS").ok()
}

#[cfg(test)]
mod tests {
    // Test code may do all of this freely.
    pub fn in_tests() -> bool {
        let _ = std::time::Instant::now();
        let _ = std::env::var("FAIR_TRIALS");
        0.5 == 0.5
    }
}
