#![forbid(unsafe_code)]
pub mod engine;
pub mod helpers;
pub mod pool;
