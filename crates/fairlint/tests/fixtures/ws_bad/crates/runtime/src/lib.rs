#![forbid(unsafe_code)]
pub mod engine;
