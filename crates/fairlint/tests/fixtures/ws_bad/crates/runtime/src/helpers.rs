//! C3 fixture: panicky helpers reachable from the engine's
//! panic-free file, directly (`pick`) and two hops out (`inner`).

pub fn pick(xs: &[u8]) -> u8 {
    xs[0]
}

pub fn deep(xs: &[u8]) -> u8 {
    inner(xs)
}

fn inner(xs: &[u8]) -> u8 {
    xs.first().copied().expect("non-empty")
}
