pub fn deliver(msgs: &[u8]) -> u8 {
    assert!(!msgs.is_empty());
    let first = msgs.first().unwrap();
    debug_assert!(*first < 250); // debug_assert is allowed
    *first
}

pub fn debug_dump(round: usize) {
    eprintln!("round {round}");
}

pub fn settle(xs: &[u8]) -> u8 {
    crate::helpers::pick(xs) + crate::helpers::deep(xs) // C3: depth 1 and 2
}
