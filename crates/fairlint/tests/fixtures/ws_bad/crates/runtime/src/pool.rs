//! C1/C2 fixture: blocking ops under live guards, opposite lock orders.
use std::io::Write;
use std::sync::Mutex;

pub struct Pool {
    jobs: Mutex<Vec<u8>>,
    done: Mutex<u8>,
}

impl Pool {
    pub fn drain(&self, out: &mut std::net::TcpStream) {
        let g = self.jobs.lock().unwrap();
        let _ = out.write_all(&g); // C1: blocking write while `jobs` is held
    }

    pub fn checkpoint(&self) {
        let g = self.jobs.lock().unwrap();
        persist(&g); // C1: one call deep into a blocking helper
    }

    pub fn forward(&self) {
        let _jobs = self.jobs.lock().unwrap();
        let _done = self.done.lock().unwrap(); // C2: jobs, then done
    }

    pub fn backward(&self) {
        let _done = self.done.lock().unwrap();
        let _jobs = self.jobs.lock().unwrap(); // C2: done, then jobs
    }
}

fn persist(bytes: &[u8]) {
    let _ = std::fs::write("target/pool.bin", bytes);
}
