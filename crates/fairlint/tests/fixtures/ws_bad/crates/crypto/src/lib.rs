#![forbid(unsafe_code)]

#[derive(Clone, Debug, PartialEq)]
pub struct MacKey(pub [u8; 32]);

#[derive(Clone)]
pub struct Commitment(pub [u8; 32]);
