#![forbid(unsafe_code)]
#![allow(clippy::print_stdout)] // bench output goes to stdout by design
#![warn(missing_docs)]
//! Vendored, dependency-free stand-in for the subset of `criterion` the
//! workspace benches use (the build environment has no crates.io access).
//!
//! It is a real — if simple — timing harness: each `bench_function` runs a
//! short calibration pass, then measures a handful of batches and reports
//! the best observed ns/iter (plus derived throughput when declared). No
//! statistics machinery, no HTML reports; enough to compare hot paths
//! release-to-release with `cargo bench`.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints (accepted for API compatibility; batches are sized
/// by the calibration pass regardless).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Setup output is small; large batches are fine.
    SmallInput,
    /// Setup output is large.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
    /// The measured routine processes this many elements per iteration.
    Elements(u64),
}

/// Measurement driver handed to every benchmark closure.
pub struct Bencher {
    best_ns_per_iter: f64,
}

const TARGET_BATCH: Duration = Duration::from_millis(40);
const BATCHES: usize = 5;

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            best_ns_per_iter: f64::INFINITY,
        }
    }

    /// Measures `routine` in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Measures `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate: how many iterations fill the target batch duration?
        let once = {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        };
        let per_batch =
            (TARGET_BATCH.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as usize;
        for _ in 0..BATCHES {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = t.elapsed().as_nanos() as f64 / per_batch as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
    }
}

/// The benchmark registry / runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_and_report(&name.to_string(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_and_report(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_and_report<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::new();
    f(&mut b);
    let ns = b.best_ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>10.1} MiB/s",
                n as f64 / (ns * 1e-9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Kelem/s", n as f64 / (ns * 1e-9) / 1e3)
        }
        None => String::new(),
    };
    println!("{name:<40} {ns:>12.1} ns/iter{rate}");
}

/// Declares a benchmark group function, `criterion`-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_finite() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("add", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
