//! Atomic file writes (temp + rename).
//!
//! Every persistent artifact the workspace produces — tile-store group
//! files, `target/simlab/<exp>.json` records, `BENCH_*.json` aggregates —
//! goes through [`atomic_write`]: bytes land in a uniquely named temporary
//! file in the destination directory and are published with a single
//! `rename`, so a killed or crashing run can never leave a truncated file
//! at the destination path. Readers either see the old complete contents
//! or the new complete contents.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic discriminator so concurrent writers in one process never
/// collide on a temp name (the pid separates processes).
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// then rename over the destination. Creates parent directories as needed.
/// On any error the temp file is removed (best effort) and the destination
/// is left untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    std::fs::create_dir_all(&dir)?;
    let base = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("atomic");
    let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".{base}.tmp.{}.{seq}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fair-tiles-fsio-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("replace");
        let path = dir.join("nested/out.json");
        atomic_write(&path, b"first").expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"first");
        atomic_write(&path, b"second").expect("rewrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        // No temp litter left behind.
        let names: Vec<_> = std::fs::read_dir(path.parent().expect("parent"))
            .expect("dir")
            .map(|e| e.expect("entry").file_name())
            .collect();
        assert_eq!(names.len(), 1, "leftover temp files: {names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_do_not_collide() {
        let dir = scratch("concurrent");
        let path = dir.join("shared.bin");
        std::thread::scope(|s| {
            for i in 0..8u8 {
                let path = path.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        atomic_write(&path, &[i; 64]).expect("write");
                    }
                });
            }
        });
        // Whatever won, the file is one writer's complete payload.
        let got = std::fs::read(&path).expect("read");
        assert_eq!(got.len(), 64);
        assert!(got.iter().all(|b| *b == got[0]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
