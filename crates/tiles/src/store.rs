//! The sharded tile store and its on-disk format.
//!
//! # Keying
//!
//! Tallies are addressed by two nested keys:
//!
//! - [`GroupKey`] `(exp, base_seed)` — the experiment id and the base seed
//!   of the run. One group maps to one on-disk file, and all cache traffic
//!   happens inside an explicitly entered group (see [`crate::cache`]), so
//!   distinct experiments can never alias each other's tiles.
//! - [`TileKey`] `(stream, stream_seed, tile_index)` — the scenario name,
//!   the derived seed of the individual `estimate()` call (experiments
//!   derive many streams from the base seed: `seed ^ k`,
//!   `seed + (i << 32)`, …), and the tile's index in the fixed tiling.
//!
//! A [`TileTally`] records the trial count alongside the four event counts;
//! consumers must check the count matches their tile geometry before using
//! a hit (this crate is deliberately ignorant of the tile size).
//!
//! # Disk format
//!
//! One file per group, written atomically (temp + rename), little-endian:
//!
//! ```text
//! file   := magic8 "FTILES01" | u32 version | u16 exp_len | exp bytes
//!           | u64 base_seed | record*
//! record := u32 0x454C4954 ("TILE") | u32 body_len | body | u64 fnv1a64(body)
//! body   := u16 stream_len | stream bytes | u64 stream_seed
//!           | u32 tile_index | u32 trials | u64 counts[4]
//! ```
//!
//! The loader is corruption-tolerant: a record whose magic, length bounds,
//! or checksum fail is skipped and the scan resynchronizes by advancing one
//! byte at a time until the next record magic — a torn or bit-flipped
//! region costs exactly the records it overlaps, never the file. A file
//! whose header fails to parse is skipped whole. Both outcomes are counted
//! in [`LoadSummary`] / [`StatsSnapshot`], never surfaced as errors: a
//! cache that fails to load is just cold.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Event-count vector width (the four fairness events E00/E01/E10/E11).
pub const TALLY_WIDTH: usize = 4;

/// The four event counts of one tile, in `Event::ALL` order.
pub type Counts = [u64; TALLY_WIDTH];

/// On-disk format version (bumped on any layout change).
pub const FORMAT_VERSION: u32 = 1;

const FILE_MAGIC: &[u8; 8] = b"FTILES01";
const RECORD_MAGIC: u32 = 0x454C_4954; // "TILE" read little-endian
/// Upper bound on embedded name lengths; a corrupt length field beyond
/// this is rejected instead of driving a huge allocation.
const MAX_NAME: usize = 4096;
const SHARDS: usize = 8;

/// Identifies one experiment run: the experiment id and its base seed.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroupKey {
    /// Experiment id (`e1` … `e17`).
    pub exp: String,
    /// The run's base seed (streams are derived from it).
    pub base_seed: u64,
}

/// Identifies one tile inside a group.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TileKey {
    /// Scenario name of the `estimate()` call that produced the tile.
    pub stream: String,
    /// The derived seed of that call.
    pub stream_seed: u64,
    /// Tile index in the fixed tiling of the trial range.
    pub index: u32,
}

/// One tile's integer tally: trial count plus the four event counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TileTally {
    /// Trials in the tile (callers validate this equals a full tile).
    pub trials: u32,
    /// Event counts in `Event::ALL` order.
    pub counts: Counts,
}

/// What a [`Store::load`] pass found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadSummary {
    /// Group files successfully opened.
    pub files: u64,
    /// Files whose header failed to parse (skipped whole).
    pub skipped_files: u64,
    /// Records loaded into the map.
    pub loaded_records: u64,
    /// Records skipped for bad magic/length/checksum.
    pub skipped_records: u64,
}

/// A point-in-time view of the store's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Lookups answered from the map.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Tallies inserted (computed fresh and recorded).
    pub inserts: u64,
    /// Records loaded from disk over the store's lifetime.
    pub loaded_records: u64,
    /// Corrupt records skipped during loads.
    pub skipped_records: u64,
    /// Group files written by flushes.
    pub flushed_files: u64,
    /// Groups currently resident.
    pub groups: u64,
    /// Tiles currently resident.
    pub entries: u64,
}

#[derive(Default)]
struct GroupState {
    tiles: BTreeMap<TileKey, TileTally>,
    dirty: bool,
}

#[derive(Default)]
struct Shard {
    groups: BTreeMap<GroupKey, GroupState>,
}

/// The tile store: a sharded in-memory map, optionally backed by one file
/// per group under a directory. All methods take `&self`; the store is
/// shared process-wide behind an `Arc` (see [`crate::cache`]).
pub struct Store {
    shards: Vec<Mutex<Shard>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    loaded_records: AtomicU64,
    skipped_records: AtomicU64,
    flushed_files: AtomicU64,
}

impl Store {
    fn new(dir: Option<PathBuf>) -> Store {
        Store {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            loaded_records: AtomicU64::new(0),
            skipped_records: AtomicU64::new(0),
            flushed_files: AtomicU64::new(0),
        }
    }

    /// A purely in-memory store ([`Store::flush`] is a no-op).
    pub fn in_memory() -> Store {
        Store::new(None)
    }

    /// A store persisted under `dir` (one `.tiles` file per group). The
    /// directory is created lazily on first flush; call [`Store::load`] to
    /// warm from whatever is already there.
    pub fn persistent(dir: impl Into<PathBuf>) -> Store {
        Store::new(Some(dir.into()))
    }

    /// The backing directory, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn shard_for(&self, group: &GroupKey) -> &Mutex<Shard> {
        let h = fnv1a64(group.exp.as_bytes()) ^ group.base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h as usize) % SHARDS]
    }

    /// Looks up a tile, bumping the hit/miss counters.
    pub fn get(&self, group: &GroupKey, tile: &TileKey) -> Option<TileTally> {
        let shard = lock(self.shard_for(group));
        let found = shard
            .groups
            .get(group)
            .and_then(|g| g.tiles.get(tile))
            .copied();
        match found {
            Some(t) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(t)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly computed tile and marks its group dirty.
    pub fn put(&self, group: GroupKey, tile: TileKey, tally: TileTally) {
        let mut shard = lock(self.shard_for(&group));
        let state = shard.groups.entry(group).or_default();
        state.tiles.insert(tile, tally);
        state.dirty = true;
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Tiles currently resident.
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                lock(s)
                    .groups
                    .values()
                    .map(|g| g.tiles.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Groups currently resident.
    pub fn groups(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock(s).groups.len() as u64)
            .sum()
    }

    /// Counter + occupancy snapshot (what `/metrics` exports).
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            loaded_records: self.loaded_records.load(Ordering::Relaxed),
            skipped_records: self.skipped_records.load(Ordering::Relaxed),
            flushed_files: self.flushed_files.load(Ordering::Relaxed),
            groups: self.groups(),
            entries: self.entries(),
        }
    }

    /// Loads every `.tiles` file under the backing directory, skipping
    /// corrupt records (and whole files with unreadable headers). Loaded
    /// groups start clean; tiles already in memory win over disk.
    /// A missing directory is simply a cold cache.
    pub fn load(&self) -> LoadSummary {
        let mut summary = LoadSummary::default();
        let Some(dir) = self.dir.as_ref() else {
            return summary;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return summary;
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "tiles"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(bytes) = std::fs::read(&path) else {
                summary.skipped_files += 1;
                continue;
            };
            match decode_group(&bytes) {
                Some((group, tiles, skipped)) => {
                    summary.files += 1;
                    summary.skipped_records += skipped;
                    let mut shard = lock(self.shard_for(&group));
                    let state = shard.groups.entry(group).or_default();
                    for (key, tally) in tiles {
                        if let std::collections::btree_map::Entry::Vacant(slot) =
                            state.tiles.entry(key)
                        {
                            slot.insert(tally);
                            summary.loaded_records += 1;
                        }
                    }
                }
                None => summary.skipped_files += 1,
            }
        }
        self.loaded_records
            .fetch_add(summary.loaded_records, Ordering::Relaxed);
        self.skipped_records
            .fetch_add(summary.skipped_records, Ordering::Relaxed);
        summary
    }

    /// Writes every dirty group to its file (atomic temp + rename),
    /// clearing dirty flags. Returns the number of files written; in-memory
    /// stores always return `Ok(0)`.
    pub fn flush(&self) -> io::Result<usize> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(0);
        };
        let mut written = 0usize;
        for shard in &self.shards {
            // Encode under the lock (cheap), write outside it.
            let pending: Vec<(PathBuf, Vec<u8>)> = {
                let mut guard = lock(shard);
                guard
                    .groups
                    .iter_mut()
                    .filter(|(_, state)| state.dirty)
                    .map(|(group, state)| {
                        state.dirty = false;
                        (
                            dir.join(group_file_name(group)),
                            encode_group(group, &state.tiles),
                        )
                    })
                    .collect()
            };
            for (path, bytes) in pending {
                crate::fsio::atomic_write(&path, &bytes)?;
                written += 1;
            }
        }
        self.flushed_files
            .fetch_add(written as u64, Ordering::Relaxed);
        Ok(written)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a 64-bit — the record checksum (and shard hash).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// File name for a group: `<exp>-<seed hex>.tiles`, with non-alphanumeric
/// experiment characters mapped to `_`. Identity comes from the file
/// *header*, not the name.
pub fn group_file_name(group: &GroupKey) -> String {
    let safe: String = group
        .exp
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{safe}-{:016x}.tiles", group.base_seed)
}

fn encode_group(group: &GroupKey, tiles: &BTreeMap<TileKey, TileTally>) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + tiles.len() * 80);
    out.extend_from_slice(FILE_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let exp = group.exp.as_bytes();
    let exp_len = exp.len().min(MAX_NAME) as u16;
    out.extend_from_slice(&exp_len.to_le_bytes());
    out.extend_from_slice(&exp[..exp_len as usize]);
    out.extend_from_slice(&group.base_seed.to_le_bytes());
    for (key, tally) in tiles {
        let body = encode_body(key, tally);
        out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    }
    out
}

fn encode_body(key: &TileKey, tally: &TileTally) -> Vec<u8> {
    let stream = key.stream.as_bytes();
    let stream_len = stream.len().min(MAX_NAME);
    let mut body = Vec::with_capacity(2 + stream_len + 8 + 4 + 4 + 32);
    body.extend_from_slice(&(stream_len as u16).to_le_bytes());
    body.extend_from_slice(&stream[..stream_len]);
    body.extend_from_slice(&key.stream_seed.to_le_bytes());
    body.extend_from_slice(&key.index.to_le_bytes());
    body.extend_from_slice(&tally.trials.to_le_bytes());
    for c in tally.counts {
        body.extend_from_slice(&c.to_le_bytes());
    }
    body
}

/// A bounds-checked little-endian cursor; every read returns `Option` so
/// the decoder is total on arbitrary bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8).and_then(|s| {
            let arr: [u8; 8] = s.try_into().ok()?;
            Some(u64::from_le_bytes(arr))
        })
    }
}

fn decode_body(body: &[u8]) -> Option<(TileKey, TileTally)> {
    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    let stream_len = cur.u16()? as usize;
    if stream_len > MAX_NAME {
        return None;
    }
    let stream = core::str::from_utf8(cur.take(stream_len)?)
        .ok()?
        .to_string();
    let stream_seed = cur.u64()?;
    let index = cur.u32()?;
    let trials = cur.u32()?;
    let mut counts = [0u64; TALLY_WIDTH];
    for c in counts.iter_mut() {
        *c = cur.u64()?;
    }
    if cur.pos != body.len() {
        return None;
    }
    // Internal consistency: counts must sum to the trial count.
    let total: u64 = counts.iter().copied().sum();
    if total != u64::from(trials) {
        return None;
    }
    Some((
        TileKey {
            stream,
            stream_seed,
            index,
        },
        TileTally { trials, counts },
    ))
}

/// A decoded group file: the group, the tiles that survived, and how many
/// corrupt records were skipped.
type DecodedGroup = (GroupKey, Vec<(TileKey, TileTally)>, u64);

/// Decodes one group file. `None` means the header was unreadable (skip
/// the whole file); otherwise returns the surviving records.
fn decode_group(bytes: &[u8]) -> Option<DecodedGroup> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.take(FILE_MAGIC.len())? != FILE_MAGIC {
        return None;
    }
    if cur.u32()? != FORMAT_VERSION {
        return None;
    }
    let exp_len = cur.u16()? as usize;
    if exp_len > MAX_NAME {
        return None;
    }
    let exp = core::str::from_utf8(cur.take(exp_len)?).ok()?.to_string();
    let base_seed = cur.u64()?;
    let group = GroupKey { exp, base_seed };

    let mut tiles = Vec::new();
    let mut skipped = 0u64;
    let mut pos = cur.pos;
    // `in_sync` collapses an arbitrarily long corrupt span into one skip:
    // the count reflects resync events, not bytes scanned.
    let mut in_sync = true;
    let magic = RECORD_MAGIC.to_le_bytes();
    while pos < bytes.len() {
        if bytes.len() - pos >= 4 && bytes[pos..pos + 4] == magic {
            if let Some((record, next)) = decode_record(bytes, pos) {
                tiles.push(record);
                pos = next;
                in_sync = true;
                continue;
            }
        }
        if in_sync {
            skipped += 1;
            in_sync = false;
        }
        pos += 1;
    }
    Some((group, tiles, skipped))
}

/// Tries to decode the record starting at `pos` (which holds the record
/// magic); returns the record and the offset just past it.
fn decode_record(bytes: &[u8], pos: usize) -> Option<((TileKey, TileTally), usize)> {
    let mut cur = Cursor {
        bytes,
        pos: pos + 4,
    };
    let body_len = cur.u32()? as usize;
    if body_len > 2 + MAX_NAME + 8 + 4 + 4 + 8 * TALLY_WIDTH {
        return None;
    }
    let body = cur.take(body_len)?;
    let checksum = cur.u64()?;
    if checksum != fnv1a64(body) {
        return None;
    }
    let record = decode_body(body)?;
    Some((record, cur.pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(stream: &str, seed: u64, index: u32) -> TileKey {
        TileKey {
            stream: stream.into(),
            stream_seed: seed,
            index,
        }
    }

    fn tally(trials: u32, counts: Counts) -> TileTally {
        TileTally { trials, counts }
    }

    fn group(exp: &str, seed: u64) -> GroupKey {
        GroupKey {
            exp: exp.into(),
            base_seed: seed,
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fair-tiles-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn get_put_and_counters() {
        let store = Store::in_memory();
        let g = group("e1", 7);
        let k = key("CoinToss/abort", 7, 0);
        assert_eq!(store.get(&g, &k), None);
        store.put(g.clone(), k.clone(), tally(64, [10, 20, 30, 4]));
        assert_eq!(store.get(&g, &k), Some(tally(64, [10, 20, 30, 4])));
        // A different group cannot see it.
        assert_eq!(store.get(&group("e2", 7), &k), None);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 2, 1));
        assert_eq!((stats.groups, stats.entries), (1, 1));
        assert_eq!(store.flush().expect("in-memory flush"), 0);
    }

    #[test]
    fn flush_and_load_round_trip() {
        let dir = scratch("roundtrip");
        let g = group("e3", 0xfa1e);
        let k1 = key("GK/n3", 0xfa1e ^ 2, 0);
        let k2 = key("GK/n3", 0xfa1e ^ 2, 1);
        {
            let store = Store::persistent(&dir);
            store.put(g.clone(), k1.clone(), tally(64, [64, 0, 0, 0]));
            store.put(g.clone(), k2.clone(), tally(64, [0, 0, 63, 1]));
            assert_eq!(store.flush().expect("flush"), 1);
            // Clean after flush: nothing more to write.
            assert_eq!(store.flush().expect("reflush"), 0);
        }
        let warm = Store::persistent(&dir);
        let summary = warm.load();
        assert_eq!(summary.files, 1);
        assert_eq!(summary.loaded_records, 2);
        assert_eq!(summary.skipped_records, 0);
        assert_eq!(warm.get(&g, &k1), Some(tally(64, [64, 0, 0, 0])));
        assert_eq!(warm.get(&g, &k2), Some(tally(64, [0, 0, 63, 1])));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_writes_canonical_bytes() {
        // Same contents inserted in different orders → identical files.
        let dir_a = scratch("canon-a");
        let dir_b = scratch("canon-b");
        let g = group("e1", 1);
        let a = Store::persistent(&dir_a);
        let b = Store::persistent(&dir_b);
        for (store, order) in [(&a, [0u32, 1, 2]), (&b, [2u32, 0, 1])] {
            for i in order {
                store.put(g.clone(), key("s", 9, i), tally(64, [64, 0, 0, 0]));
            }
            store.flush().expect("flush");
        }
        let name = group_file_name(&g);
        let bytes_a = std::fs::read(dir_a.join(&name)).expect("a");
        let bytes_b = std::fs::read(dir_b.join(&name)).expect("b");
        assert_eq!(bytes_a, bytes_b);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn corrupt_records_are_skipped_not_fatal() {
        let dir = scratch("corrupt");
        let g = group("e5", 42);
        let keys: Vec<TileKey> = (0..5).map(|i| key("OCT/n5", 42, i)).collect();
        {
            let store = Store::persistent(&dir);
            for (i, k) in keys.iter().enumerate() {
                store.put(
                    g.clone(),
                    k.clone(),
                    tally(64, [i as u64, 64 - i as u64, 0, 0]),
                );
            }
            store.flush().expect("flush");
        }
        let path = dir.join(group_file_name(&g));
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a byte in the middle of the file body (past the header),
        // corrupting one record's checksum.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");

        let warm = Store::persistent(&dir);
        let summary = warm.load();
        assert_eq!(summary.files, 1);
        assert!(summary.skipped_records >= 1, "{summary:?}");
        assert_eq!(
            summary.loaded_records + summary.skipped_records,
            5,
            "every record accounted for: {summary:?}"
        );
        // The surviving tiles are intact.
        let mut intact = 0;
        for (i, k) in keys.iter().enumerate() {
            if let Some(t) = warm.get(&g, k) {
                assert_eq!(t, tally(64, [i as u64, 64 - i as u64, 0, 0]));
                intact += 1;
            }
        }
        assert_eq!(intact as u64, summary.loaded_records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_keeps_full_prefix_records() {
        let dir = scratch("truncated");
        let g = group("e2", 9);
        {
            let store = Store::persistent(&dir);
            for i in 0..4u32 {
                store.put(g.clone(), key("t", 9, i), tally(64, [64, 0, 0, 0]));
            }
            store.flush().expect("flush");
        }
        let path = dir.join(group_file_name(&g));
        let bytes = std::fs::read(&path).expect("read");
        // Chop the last 10 bytes (a torn write mid-record).
        std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");
        let warm = Store::persistent(&dir);
        let summary = warm.load();
        assert_eq!(summary.loaded_records, 3);
        assert_eq!(summary.skipped_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_header_skips_file() {
        let dir = scratch("garbage");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("junk.tiles"), b"not a tile file at all").expect("write");
        let store = Store::persistent(&dir);
        let summary = store.load();
        assert_eq!(summary.files, 0);
        assert_eq!(summary.skipped_files, 1);
        assert_eq!(store.entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn body_rejects_count_sum_mismatch() {
        let k = key("s", 1, 0);
        let mut t = tally(64, [10, 10, 10, 10]);
        let body = encode_body(&k, &t);
        assert_eq!(decode_body(&body), None, "40 != 64 must be rejected");
        t.counts = [16, 16, 16, 16];
        let body = encode_body(&k, &t);
        assert_eq!(decode_body(&body), Some((k, t)));
    }

    #[test]
    fn load_missing_dir_is_cold_not_error() {
        let store = Store::persistent(scratch("never-created"));
        assert_eq!(store.load(), LoadSummary::default());
    }
}
