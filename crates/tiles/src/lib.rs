#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fair-tiles` — a zero-dependency content-addressed tile store.
//!
//! The deterministic scheduler (`fair-simlab`) partitions every estimation
//! into fixed 64-trial tiles whose integer event tallies are pure functions
//! of `(scenario, stream seed, tile index)` — independent of the worker
//! count and of the total trial budget. That purity makes a *full* tile's
//! tally a cacheable artifact: re-serving the same `(exp, seed)` with a
//! bigger `trials` only has to compute the missing tail tiles, and merging
//! cached tallies through the same integer-merge path yields results
//! **byte-identical** to a fresh run for every prefix.
//!
//! This crate owns that cache:
//!
//! - [`store::Store`] — an in-memory sharded map from
//!   `(exp, base seed) × (stream, stream seed, tile index)` to a
//!   [`store::TileTally`], optionally backed by a compact on-disk format
//!   under `target/simlab/tiles/` (one file per `(exp, seed)` group,
//!   versioned header, per-record checksums, corruption-tolerant load that
//!   skips bad records, atomic temp+rename writes);
//! - [`cache`] — the process-global installation point plus the
//!   thread-local `(exp, base seed)` group context the estimator keys
//!   lookups under;
//! - [`fsio::atomic_write`] — the temp+rename write primitive, shared with
//!   simlab's JSON writers so a killed run never leaves a truncated file.
//!
//! The crate sits below everything (zero dependencies, inside the fairlint
//! determinism boundary): simlab, core, and serve all link it without
//! cycles. Nothing here knows the tile *size* — callers record the trial
//! count per tile and must validate it on lookup.

pub mod cache;
pub mod fsio;
pub mod store;

pub use cache::with_group;
pub use fsio::atomic_write;
pub use store::{Counts, GroupKey, LoadSummary, StatsSnapshot, Store, TileKey, TileTally};

/// Default on-disk location for the persistent store, relative to the
/// workspace root (next to simlab's `target/simlab/<exp>.json` records).
pub const DEFAULT_DIR: &str = "target/simlab/tiles";
