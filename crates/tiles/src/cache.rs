//! Process-global store installation and the thread-local group context.
//!
//! The estimator (`fair_core::utility::estimate`) is many layers below the
//! code that knows which experiment is running, so the group key travels
//! out of band: callers that own the `(exp, base seed)` pair (the serve
//! backend, the batch runner) wrap the run in [`with_group`], and the
//! estimator asks [`lookup`]/[`record`] which consult the installed store
//! under the ambient group. With no store installed or no group entered,
//! both are inert — the cache is strictly opt-in and every existing call
//! path behaves exactly as before.
//!
//! Lookups and inserts happen on the *calling* thread (the estimator
//! resolves cached tiles before fanning the missing ones out to scheduler
//! workers), so the thread-local group never needs to cross threads.

use std::cell::RefCell;
use std::sync::{Arc, RwLock};

use crate::store::{GroupKey, StatsSnapshot, Store, TileKey, TileTally};

static STORE: RwLock<Option<Arc<Store>>> = RwLock::new(None);

thread_local! {
    /// Stack of entered groups (innermost last) — `with_group` nests.
    static GROUP: RefCell<Vec<GroupKey>> = const { RefCell::new(Vec::new()) };
}

/// Installs `store` as the process-global tile store, replacing (and
/// returning) any previous one.
pub fn install(store: Arc<Store>) -> Option<Arc<Store>> {
    let mut slot = STORE.write().unwrap_or_else(|e| e.into_inner());
    slot.replace(store)
}

/// Removes and returns the installed store.
pub fn uninstall() -> Option<Arc<Store>> {
    let mut slot = STORE.write().unwrap_or_else(|e| e.into_inner());
    slot.take()
}

/// The currently installed store, if any.
pub fn installed() -> Option<Arc<Store>> {
    STORE.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Runs `f` with the thread's ambient group set to `(exp, base_seed)`.
/// Restores the previous group on exit (including unwinds).
pub fn with_group<T>(exp: &str, base_seed: u64, f: impl FnOnce() -> T) -> T {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            GROUP.with(|g| {
                g.borrow_mut().pop();
            });
        }
    }
    GROUP.with(|g| {
        g.borrow_mut().push(GroupKey {
            exp: exp.to_string(),
            base_seed,
        })
    });
    let _pop = Pop;
    f()
}

fn current_group() -> Option<GroupKey> {
    GROUP.with(|g| g.borrow().last().cloned())
}

/// Whether tile caching is live on this thread: a store is installed and a
/// group has been entered.
pub fn active() -> bool {
    current_group().is_some() && installed().is_some()
}

/// Looks up a tile under the ambient group. `None` when inactive or when
/// the tile is absent; hit/miss counters tick only on real lookups.
pub fn lookup(stream: &str, stream_seed: u64, index: u32) -> Option<TileTally> {
    let group = current_group()?;
    let store = installed()?;
    store.get(
        &group,
        &TileKey {
            stream: stream.to_string(),
            stream_seed,
            index,
        },
    )
}

/// Records a freshly computed tile under the ambient group (no-op when
/// inactive).
pub fn record(stream: &str, stream_seed: u64, index: u32, tally: TileTally) {
    let (Some(group), Some(store)) = (current_group(), installed()) else {
        return;
    };
    store.put(
        group,
        TileKey {
            stream: stream.to_string(),
            stream_seed,
            index,
        },
        tally,
    );
}

/// Flushes the installed store's dirty groups to disk. Returns the number
/// of files written (0 when no store, in-memory store, or nothing dirty);
/// I/O errors are swallowed — a cache that fails to persist is still a
/// working cache.
pub fn flush() -> usize {
    installed().and_then(|s| s.flush().ok()).unwrap_or(0)
}

/// Stats snapshot of the installed store, if any.
pub fn snapshot() -> Option<StatsSnapshot> {
    installed().map(|s| s.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Cache tests share the process-global store slot; serialize them.
    static SLOT: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn inert_without_store_or_group() {
        let _guard = SLOT.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!active());
        assert_eq!(lookup("s", 1, 0), None);
        record("s", 1, 0, TileTally::default()); // no-op
        assert_eq!(flush(), 0);
        assert_eq!(snapshot(), None);

        // Store but no group: still inert, counters untouched.
        install(Arc::new(Store::in_memory()));
        assert!(!active());
        assert_eq!(lookup("s", 1, 0), None);
        let stats = snapshot().expect("installed");
        assert_eq!((stats.hits, stats.misses, stats.inserts), (0, 0, 0));
        uninstall();
    }

    #[test]
    fn group_scopes_nest_and_restore() {
        let _guard = SLOT.lock().unwrap_or_else(|e| e.into_inner());
        install(Arc::new(Store::in_memory()));
        with_group("e1", 5, || {
            assert!(active());
            record(
                "s",
                5,
                0,
                TileTally {
                    trials: 1,
                    counts: [1, 0, 0, 0],
                },
            );
            with_group("e2", 5, || {
                // Inner group cannot see e1's tile.
                assert_eq!(lookup("s", 5, 0), None);
            });
            // Restored: e1's tile visible again.
            assert_eq!(
                lookup("s", 5, 0),
                Some(TileTally {
                    trials: 1,
                    counts: [1, 0, 0, 0]
                })
            );
        });
        assert!(!active());
        uninstall();
    }
}
