//! Concrete generators: [`StdRng`], the workspace's only RNG.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic RNG: xoshiro256++ seeded through
/// splitmix64 (Blackman–Vigna). Not the same stream as upstream `rand`'s
/// `StdRng` (ChaCha12) — irrelevant here, since every consumer treats the
/// stream as an opaque seeded source and all claims are statistical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through splitmix64 exactly as xoshiro's authors
        // recommend; the expansion never yields the all-zero state.
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_diverge() {
        let mut streams: Vec<u64> = (0..64)
            .map(|s| StdRng::seed_from_u64(s).next_u64())
            .collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 64, "first outputs collide across seeds");
    }

    #[test]
    fn clone_preserves_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
