#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no network access to crates.io,
//! so the workspace resolves `rand` to this path crate instead.
//!
//! The API mirrors modern `rand` naming (`random`, `random_range`,
//! `random_bool`, `seed_from_u64`) and the module layout the workspace
//! imports (`rand::rngs::StdRng`, `rand::Rng`, `rand::RngExt`,
//! `rand::SeedableRng`). [`rngs::StdRng`] is a seeded xoshiro256++ —
//! deterministic, high quality, and identical on every platform, which is
//! all the reproduction needs (DESIGN.md: every execution is driven by a
//! `u64` seed).

pub mod rngs;

/// Sources of randomness: the core sampling interface.
///
/// Unlike upstream `rand`, the convenience samplers live directly on this
/// trait (upstream splits them across `RngCore`/`Rng`); [`RngExt`] is an
/// alias kept for imports that use the extension-trait name.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Samples a uniform value of type `T` (bools, integers, floats in
    /// `[0, 1)`, byte arrays).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

pub use self::Rng as RngExt;

/// Seeding interface: every RNG in this workspace is constructed from a
/// `u64` seed, so that is the whole trait.
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Random {
    /// Draws a uniform value from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by 128-bit multiply-shift. The modulo
/// bias is 2⁻⁶⁴ · span — far below anything the Monte-Carlo experiments can
/// resolve — in exchange for a branch-free, platform-identical sampler.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_remainders() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in 0..20 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn random_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.random_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..40_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 40_000.0 - 0.25).abs() < 0.02);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn random_unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
