//! `tomlish` — the workspace's one TOML-subset parser.
//!
//! Two consumers share it: `fairlint` loads `fairlint.toml` (lenient —
//! a config line the linter does not understand is skipped so the format
//! can grow), and `fair-scenario` compiles `scenarios/*.toml` experiment
//! families (strict — a malformed line is a span-carrying [`ParseError`]
//! so authors get `file:line` diagnostics). One parser, one set of
//! quirks, instead of two hand-rolled readers drifting apart.
//!
//! The subset: `[section]` headers, `key = value` pairs, `#` comments
//! (quote-aware), and values that are quoted strings, booleans, integers,
//! floats, or flat arrays of those (arrays may span lines). Keys are
//! flattened to `section.key`. No nested tables, no inline tables, no
//! escapes inside strings — deliberately small enough to audit.

/// A parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `key = "…"`
    Str(String),
    /// `key = true` / `false`
    Bool(bool),
    /// `key = 3`
    Int(i64),
    /// `key = 0.25`
    Float(f64),
    /// `key = [v, v, …]` (flat; elements are scalars)
    List(Vec<Value>),
}

impl Value {
    /// Human-readable type label for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::List(_) => "array",
        }
    }

    /// The string content, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric content as `f64` (integers widen losslessly for the
    /// magnitudes a config file holds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }
}

/// One `key = value` pair with the 1-based line it started on.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    /// Flattened `section.key`.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based line of the `key =` (multi-line arrays anchor here).
    pub line: usize,
}

/// A strict-mode parse failure, anchored to its line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line the failure occurred on.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Strict parse: every non-blank, non-comment line must be a section
/// header or a well-formed `key = value`, and every value must parse.
///
/// # Errors
///
/// Returns the first malformed line as a span-carrying [`ParseError`].
pub fn parse(src: &str) -> Result<Vec<Item>, ParseError> {
    walk(src, Mode::Strict)
}

/// Lenient parse: skips lines and values it cannot understand (the
/// `fairlint.toml` contract — unknown constructs are ignored so the
/// format can grow without breaking older linters).
pub fn parse_lenient(src: &str) -> Vec<Item> {
    // Lenient mode never returns Err; swallow unparseable lines.
    walk(src, Mode::Lenient).unwrap_or_default()
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Strict,
    Lenient,
}

fn walk(src: &str, mode: Mode) -> Result<Vec<Item>, ParseError> {
    let strict = mode == Mode::Strict;
    let mut out = Vec::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate();
    while let Some((idx, raw_line)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            if strict && h.trim().is_empty() {
                return Err(ParseError {
                    line: line_no,
                    msg: "empty section header".to_string(),
                });
            }
            section = h.trim().to_string();
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            if strict {
                return Err(ParseError {
                    line: line_no,
                    msg: format!("expected `key = value` or `[section]`, found `{line}`"),
                });
            }
            continue;
        };
        let name = k.trim();
        if strict && name.is_empty() {
            return Err(ParseError {
                line: line_no,
                msg: "missing key before `=`".to_string(),
            });
        }
        let key = if section.is_empty() {
            name.to_string()
        } else {
            format!("{section}.{name}")
        };
        // A `[` with no closing `]` on the same line opens a multi-line
        // array: keep consuming (comment-stripped) lines until it closes.
        let mut value = v.trim().to_string();
        let mut unterminated = false;
        while value.starts_with('[') && !value.ends_with(']') {
            let Some((_, next)) = lines.next() else {
                unterminated = true;
                break;
            };
            value.push_str(strip_comment(next).trim());
        }
        if unterminated {
            if strict {
                return Err(ParseError {
                    line: line_no,
                    msg: format!("array for `{key}` never closes (missing `]`)"),
                });
            }
            continue;
        }
        match parse_value(&value, mode) {
            Ok(Some(val)) => out.push(Item {
                key,
                value: val,
                line: line_no,
            }),
            Ok(None) => {} // lenient: skip what we cannot understand
            Err(msg) => {
                if strict {
                    return Err(ParseError { line: line_no, msg });
                }
            }
        }
    }
    Ok(out)
}

/// A `#` outside quotes starts a comment.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `Ok(None)` means "skip this item" and is only produced in lenient
/// mode; strict mode turns every unparseable value into `Err`.
fn parse_value(v: &str, mode: Mode) -> Result<Option<Value>, String> {
    if let Some(inner) = v.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err("unterminated array".to_string());
        };
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            match parse_scalar(part) {
                Some(val) => items.push(val),
                None if mode == Mode::Lenient => {} // skip junk elements
                None => return Err(format!("unparseable array element `{part}`")),
            }
        }
        return Ok(Some(Value::List(items)));
    }
    match parse_scalar(v) {
        Some(val) => Ok(Some(val)),
        None if mode == Mode::Lenient => Ok(None),
        None => Err(format!(
            "unparseable value `{v}` (want a quoted string, boolean, number, or array)"
        )),
    }
}

fn parse_scalar(v: &str) -> Option<Value> {
    if v == "true" {
        return Some(Value::Bool(true));
    }
    if v == "false" {
        return Some(Value::Bool(false));
    }
    if let Ok(n) = v.parse::<i64>() {
        return Some(Value::Int(n));
    }
    // Floats must *look* numeric before f64::parse gets a say, so bare
    // words like `inf`/`nan` stay unparseable rather than smuggling
    // non-finite values into configs.
    if v.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '+' || c == '.') {
        if let Ok(x) = v.parse::<f64>() {
            return Some(Value::Float(x));
        }
    }
    let s = v.strip_prefix('"')?.strip_suffix('"')?;
    Some(Value::Str(s.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_parses_sections_scalars_and_arrays() {
        let items = parse(
            "# header\n[scenario]\nid = \"s_x\"\nn = 3\nrate = 0.25\nok = true\n\n[sweep]\nxs = [1, 2.5, \"a\"]\n",
        )
        .expect("well-formed");
        let get = |k: &str| items.iter().find(|i| i.key == k).expect(k).clone();
        assert_eq!(get("scenario.id").value.as_str(), Some("s_x"));
        assert_eq!(get("scenario.id").line, 3);
        assert_eq!(get("scenario.n").value.as_int(), Some(3));
        assert_eq!(get("scenario.rate").value.as_f64(), Some(0.25));
        assert_eq!(get("scenario.ok").value.as_bool(), Some(true));
        let xs = get("sweep.xs");
        assert_eq!(xs.line, 9);
        let list = xs.value.as_list().expect("array").to_vec();
        assert_eq!(
            list,
            vec![Value::Int(1), Value::Float(2.5), Value::Str("a".into())]
        );
    }

    #[test]
    fn strict_errors_carry_the_line() {
        let err = parse("a = 1\nwhat is this\n").expect_err("malformed");
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("key = value"), "{}", err.msg);

        let err = parse("xs = [1,\n 2,\n").expect_err("unclosed");
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("never closes"), "{}", err.msg);

        let err = parse("x = bare_word\n").expect_err("junk scalar");
        assert_eq!(err.line, 1);

        let err = parse("xs = [oops]\n").expect_err("junk element");
        assert!(err.msg.contains("array element"), "{}", err.msg);

        let err = parse("[]\n").expect_err("empty header");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn lenient_skips_what_strict_rejects() {
        let items = parse_lenient("a = 1\nwhat is this\nx = bare\nxs = [oops, \"keep\"]\nb = 2\n");
        let keys: Vec<&str> = items.iter().map(|i| i.key.as_str()).collect();
        assert_eq!(keys, vec!["a", "xs", "b"]);
        assert_eq!(
            items[1].value.as_list(),
            Some(&[Value::Str("keep".into())][..])
        );
    }

    #[test]
    fn multi_line_arrays_anchor_on_their_first_line() {
        let items = parse("[s]\nxs = [\n  \"a\",  # why a\n  \"b\",\n]\nnext = true\n")
            .expect("well-formed");
        assert_eq!(items[0].key, "s.xs");
        assert_eq!(items[0].line, 2);
        assert_eq!(
            items[0].value.as_list(),
            Some(&[Value::Str("a".into()), Value::Str("b".into())][..])
        );
        assert_eq!(items[1].key, "s.next");
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let items = parse("k = \"a#b\"\n").expect("well-formed");
        assert_eq!(items[0].value.as_str(), Some("a#b"));
    }

    #[test]
    fn non_finite_floats_do_not_parse() {
        assert!(parse("x = inf\n").is_err());
        assert!(parse("x = nan\n").is_err());
        // Explicitly signed non-finites look numeric but still parse to
        // Float — callers validate finiteness; quoted they are strings.
        assert_eq!(parse_scalar("\"inf\""), Some(Value::Str("inf".into())));
    }
}
