#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fair-simlab` — the deterministic parallel experiment-execution
//! subsystem behind the E1–E17 reproduction suite.
//!
//! Every quantitative claim in the paper is checked by Monte-Carlo
//! estimation; this crate makes those estimations (1) fast — trials are
//! sharded across `std::thread::scope` workers — (2) *bit-identical for
//! any worker count* — each trial's seed is derived independently of the
//! schedule via [`seed::trial_seed`] (splitmix64) and per-worker partial
//! tallies are merged in a schedule-independent order — and (3) observable
//! — live trials/sec progress, per-trial latency summaries, and a
//! hand-rolled JSON results store persisting every run
//! (`target/simlab/<exp>.json` plus the aggregate `BENCH_reproduce.json`).
//!
//! The protocol engine itself stays single-threaded *per execution*
//! (DESIGN.md's reproducible-adversary-scheduling requirement); simlab
//! parallelizes *across* independent trials only.
//!
//! The only dependency is the workspace's own zero-dependency `fair-trace`
//! (shared integer quantile code and the per-protocol metric types embedded
//! in records), so every layer of the workspace — including `fair-core`'s
//! estimator — can use the scheduler.

pub mod config;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod record;
pub mod scheduler;
pub mod seed;
pub mod tomlish;

pub use metrics::{BatchTimer, LatencySummary, Progress};
pub use pool::{SubmitError, WorkerPool};
pub use record::{
    proto_json, result_json, AdaptiveSummary, ExpRecord, ReportRecord, RowRecord, SuiteRecord,
};
pub use scheduler::{effective_jobs, run_indexed, run_tiled, set_jobs, with_jobs, TILE};
pub use seed::trial_seed;
