//! A hand-rolled JSON writer (the workspace takes no serde dependency).
//!
//! Build a [`Json`] value and render it with [`Json::render`] (compact) or
//! [`Json::render_pretty`]. Strings are escaped per RFC 8259; non-finite
//! numbers render as `null` (JSON has no NaN/∞).

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (rendered as integer when exactly integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Returns the canonical form of the value: every object's fields
    /// sorted by key (recursively; arrays keep their order). Rendering a
    /// canonical value is deterministic and diff-friendly — two documents
    /// with the same content produce byte-identical output regardless of
    /// the order their builders appended fields in, so persisted records
    /// (`BENCH_reproduce.json`, `target/simlab/*.json`, served estimate
    /// bodies) churn only when their *content* changes.
    pub fn canonical(self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.into_iter().map(Json::canonical).collect()),
            Json::Obj(fields) => {
                let mut fields: Vec<(String, Json)> = fields
                    .into_iter()
                    .map(|(k, v)| (k, v.canonical()))
                    .collect();
                // Stable: duplicate keys (which the builder never emits,
                // but the parser accepts) keep their relative order.
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(fields)
            }
            leaf => leaf,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders indented JSON (two spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
                write_escaped(out, &fields[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                fields[i].1.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A minimal recursive-descent JSON parser — enough for the test suite to
/// verify round-trips and for tools to re-read persisted run records.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    let s = std::str::from_utf8(b).map_err(|e| e.to_string())?;
    let mut chars = s[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

/// Looks up a field of an object (`None` on non-objects / missing keys).
pub fn get<'j>(value: &'j Json, key: &str) -> Option<&'j Json> {
    match value {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses() {
        let doc = Json::obj()
            .field("name", Json::str("e1 \"quoted\"\nline"))
            .field("pass", Json::Bool(true))
            .field("trials", Json::num(1000u32))
            .field("wall", Json::Num(12.25))
            .field("nan", Json::Num(f64::NAN))
            .field("rows", Json::Arr(vec![Json::Null, Json::num(2u32)]));
        for rendered in [doc.render(), doc.render_pretty()] {
            let back = parse(&rendered).unwrap();
            assert_eq!(get(&back, "pass"), Some(&Json::Bool(true)));
            assert_eq!(get(&back, "trials"), Some(&Json::Num(1000.0)));
            assert_eq!(get(&back, "wall"), Some(&Json::Num(12.25)));
            assert_eq!(get(&back, "nan"), Some(&Json::Null));
            assert_eq!(
                get(&back, "name"),
                Some(&Json::Str("e1 \"quoted\"\nline".to_string()))
            );
            assert_eq!(
                get(&back, "rows"),
                Some(&Json::Arr(vec![Json::Null, Json::Num(2.0)]))
            );
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::num(3u32).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
        assert_eq!(Json::Num(-0.25).render(), "-0.25");
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::str("\u{1}tab\there").render();
        assert_eq!(s, "\"\\u0001tab\\there\"");
        assert_eq!(parse(&s).unwrap(), Json::Str("\u{1}tab\there".to_string()));
    }

    #[test]
    fn canonical_sorts_object_keys_recursively() {
        let doc = Json::obj()
            .field("zeta", Json::num(1u32))
            .field(
                "alpha",
                Json::Arr(vec![Json::obj()
                    .field("b", Json::Null)
                    .field("a", Json::Bool(true))]),
            )
            .field(
                "mid",
                Json::obj()
                    .field("y", Json::num(2u32))
                    .field("x", Json::num(3u32)),
            );
        let canon = doc.canonical();
        assert_eq!(
            canon.render(),
            "{\"alpha\":[{\"a\":true,\"b\":null}],\"mid\":{\"x\":3,\"y\":2},\"zeta\":1}"
        );
        // Idempotent: canonicalizing a canonical value is the identity.
        assert_eq!(canon.clone().canonical(), canon);
    }

    #[test]
    fn canonical_rendering_is_field_order_independent() {
        let ab = Json::obj()
            .field("a", Json::num(1u32))
            .field("b", Json::str("x"));
        let ba = Json::obj()
            .field("b", Json::str("x"))
            .field("a", Json::num(1u32));
        assert_eq!(
            ab.canonical().render_pretty(),
            ba.canonical().render_pretty()
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }
}
