//! Run observability: global trial counters (for trials/sec + ETA progress
//! lines) and per-trial latency collection (min/p50/p99/max summaries).
//!
//! Collection is off by default so unit tests and library consumers pay
//! nothing; the `reproduce` runner enables it around each experiment and
//! drains a [`LatencySummary`] afterwards. Counters are atomics; latency
//! samples are batched per tile so the mutex is touched once per ~64
//! trials, never per trial.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRIALS_DONE: AtomicU64 = AtomicU64::new(0);
static SAMPLES: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Whether trial metrics are being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on/off and clears all state (called by the runner at
/// experiment boundaries).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    TRIALS_DONE.store(0, Ordering::Relaxed);
    SAMPLES.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Records a finished batch of trials with their per-trial latencies.
/// No-op unless collection is enabled.
pub fn record_batch(latencies_ns: &[u64]) {
    if !enabled() || latencies_ns.is_empty() {
        return;
    }
    TRIALS_DONE.fetch_add(latencies_ns.len() as u64, Ordering::Relaxed);
    SAMPLES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .extend_from_slice(latencies_ns);
}

/// Trials completed since collection was (re)enabled.
pub fn trials_done() -> u64 {
    TRIALS_DONE.load(Ordering::Relaxed)
}

/// Distribution summary of per-trial execution latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of trials measured.
    pub count: usize,
    /// Fastest trial, nanoseconds.
    pub min_ns: u64,
    /// Median trial, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile trial, nanoseconds.
    pub p99_ns: u64,
    /// Slowest trial, nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes a set of per-trial latencies (`None` when empty).
    ///
    /// Percentile indices come from `fair_trace::stats::percentile_index`
    /// — exact integer arithmetic shared with the trace histograms. The
    /// float formulation this replaces (`round((count − 1) as f64 * p)`)
    /// mis-indexed exact-halfway cases: `0.99` is not representable in
    /// binary, so `50 × 0.99` evaluated to `49.499…` and truncated the
    /// p99 of a 51-sample batch to index 49 instead of 50.
    pub fn from_samples(mut samples: Vec<u64>) -> Option<LatencySummary> {
        use fair_trace::stats::{percentile_index, P50, P99};
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        Some(LatencySummary {
            count,
            min_ns: samples[0],
            p50_ns: samples[percentile_index(count, P50)],
            p99_ns: samples[percentile_index(count, P99)],
            max_ns: samples[count - 1],
        })
    }
}

impl core::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "min {} / p50 {} / p99 {} / max {}",
            fmt_ns(self.min_ns),
            fmt_ns(self.p50_ns),
            fmt_ns(self.p99_ns),
            fmt_ns(self.max_ns)
        )
    }
}

/// Renders a nanosecond count with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The per-trial timing facade: wall-clock reads stay inside `simlab`
/// (fairlint rule D1 keeps `Instant` out of the determinism-boundary
/// crates), and estimators just wrap each trial in [`BatchTimer::time`].
///
/// When collection is disabled (the default) the timer is a no-op: no
/// clock is read and nothing is allocated beyond an empty `Option`.
///
/// # Examples
///
/// ```
/// use fair_simlab::metrics::BatchTimer;
///
/// let mut timer = BatchTimer::start(8);
/// let answer = timer.time(|| 2 + 2);
/// assert_eq!(answer, 4);
/// timer.finish(); // records the batch if collection is enabled
/// ```
#[derive(Debug)]
pub struct BatchTimer {
    samples: Option<Vec<u64>>,
}

impl BatchTimer {
    /// Creates a timer for a batch of up to `capacity` timed calls.
    /// Samples are only collected while metrics are [`enabled`].
    pub fn start(capacity: usize) -> BatchTimer {
        BatchTimer {
            samples: enabled().then(|| Vec::with_capacity(capacity)),
        }
    }

    /// Runs `f`, recording its wall-clock latency when collection is
    /// enabled; transparent otherwise.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        match self.samples.as_mut() {
            Some(samples) => {
                let t0 = Instant::now();
                let out = f();
                samples.push(t0.elapsed().as_nanos() as u64);
                out
            }
            None => f(),
        }
    }

    /// Submits the batch to the global latency collector.
    pub fn finish(self) {
        if let Some(samples) = self.samples {
            record_batch(&samples);
        }
    }
}

/// Drains and summarizes the collected per-trial latencies.
pub fn drain_latency() -> Option<LatencySummary> {
    let samples = std::mem::take(&mut *SAMPLES.lock().unwrap_or_else(|e| e.into_inner()));
    LatencySummary::from_samples(samples)
}

/// A live stderr progress line: `trials done, trials/sec, ETA` against an
/// expected trial count, refreshed from a background ticker thread.
pub struct Progress {
    stop: std::sync::Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Progress {
    /// Spawns a ticker that reports progress for `label` every `period`
    /// until dropped. `expected_trials` drives the ETA (0 = unknown).
    pub fn start(label: &str, expected_trials: u64, period: Duration) -> Progress {
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let label = label.to_string();
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let done = trials_done();
                let secs = t0.elapsed().as_secs_f64();
                if done == 0 || secs <= 0.0 {
                    continue;
                }
                let rate = done as f64 / secs;
                let eta = if expected_trials > done && rate > 0.0 {
                    format!(", ETA {:.1}s", (expected_trials - done) as f64 / rate)
                } else {
                    String::new()
                };
                eprintln!("[simlab] {label}: {done} trials, {:.0} trials/s{eta}", rate);
            }
        });
        Progress {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles_are_order_statistics() {
        let s = LatencySummary::from_samples((1..=100).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.p50_ns, 51); // index round(99*0.5)=50 → value 51
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert!(LatencySummary::from_samples(vec![]).is_none());
    }

    #[test]
    fn summary_handles_tiny_batches_exactly() {
        // 0 elements: no summary.
        assert!(LatencySummary::from_samples(vec![]).is_none());
        // 1 element: every statistic is that element.
        let s1 = LatencySummary::from_samples(vec![42]).unwrap();
        assert_eq!(
            (s1.count, s1.min_ns, s1.p50_ns, s1.p99_ns, s1.max_ns),
            (1, 42, 42, 42, 42)
        );
        // 2 elements: the halfway median index rounds up to the larger.
        let s2 = LatencySummary::from_samples(vec![30, 10]).unwrap();
        assert_eq!(
            (s2.count, s2.min_ns, s2.p50_ns, s2.p99_ns, s2.max_ns),
            (2, 10, 30, 30, 30)
        );
    }

    #[test]
    fn summary_of_one_tile_matches_order_statistics() {
        // 64 samples — exactly one scheduler tile. Indices:
        // round(63·0.5) = 32 (31.5 rounds up), round(63·0.99) = 62.
        let s = LatencySummary::from_samples((1..=64).rev().collect()).unwrap();
        assert_eq!(s.count, 64);
        assert_eq!((s.min_ns, s.p50_ns, s.p99_ns, s.max_ns), (1, 33, 63, 64));
    }

    #[test]
    fn halfway_percentile_indices_are_exact() {
        // 51 samples: (51−1)·0.99 = 49.5 exactly → index 50. The float
        // formula this pins against computed 49.499… and picked 49.
        let s = LatencySummary::from_samples((1..=51).collect()).unwrap();
        assert_eq!(s.p99_ns, 51);
        assert_eq!(s.p50_ns, 26);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
    }

    #[test]
    fn disabled_collection_is_a_no_op() {
        set_enabled(false);
        record_batch(&[1, 2, 3]);
        assert_eq!(trials_done(), 0);
        assert!(drain_latency().is_none());
    }
}
