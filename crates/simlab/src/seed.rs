//! Schedule-independent per-trial seed derivation.
//!
//! Trial `i` of a run with base seed `s` always executes with seed
//! [`trial_seed`]`(s, i)` — a pure function of `(s, i)` — so the stream of
//! randomness a trial sees does not depend on which worker runs it or how
//! many workers exist. This is the property that makes `--jobs K` produce
//! bit-identical tallies for every `K`.
//!
//! The derivation is the SplitMix64 sequence of Steele–Lea–Flood seeded at
//! the base seed: `trial_seed(s, i) = mix64(s + (i+1)·GOLDEN_GAMMA)`, i.e.
//! the `i`-th output of the splitmix64 generator with state `s`, computed
//! by random access instead of iteration.

/// The SplitMix64 state increment (the odd integer closest to 2⁶⁴/φ).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output mix (a bijection on `u64`).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for trial number `trial_index` of a run with `base_seed`.
#[inline]
pub fn trial_seed(base_seed: u64, trial_index: u64) -> u64 {
    mix64(base_seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(trial_index.wrapping_add(1))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn golden_values_are_stable() {
        // Pinned outputs: any change to the derivation silently reshuffles
        // every experiment's sample stream, so lock it down.
        assert_eq!(trial_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(trial_seed(0, 1), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(trial_seed(0, 2), 0x06C4_5D18_8009_454F);
        assert_eq!(trial_seed(0xfa1e, 0), trial_seed(0xfa1e, 0));
        assert_ne!(trial_seed(0xfa1e, 0), trial_seed(0xfa1f, 0));
    }

    #[test]
    fn matches_iterated_splitmix64() {
        // Random access must agree with running the generator forward.
        let base = 0x1234_5678_9abc_def0u64;
        let mut state = base;
        for i in 0..1000u64 {
            state = state.wrapping_add(GOLDEN_GAMMA);
            assert_eq!(trial_seed(base, i), mix64(state), "index {i}");
        }
    }

    #[test]
    fn no_collisions_in_1e5_indices() {
        for base in [0u64, 0xfa1e, u64::MAX / 2] {
            let seeds: HashSet<u64> = (0..100_000).map(|i| trial_seed(base, i)).collect();
            assert_eq!(seeds.len(), 100_000, "collision under base {base:#x}");
        }
    }

    #[test]
    fn mix64_is_a_bijection_on_samples() {
        // Spot-check injectivity of the mix on a dense low range.
        let outs: HashSet<u64> = (0..100_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 100_000);
    }
}
