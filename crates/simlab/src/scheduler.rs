//! The deterministic tiled trial scheduler.
//!
//! [`run_tiled`] partitions `[0, total)` trial indices into fixed-size
//! tiles and maps a caller-supplied function over every tile, returning the
//! per-tile results **in tile order** regardless of which worker computed
//! which tile. Two invariants make the output independent of the worker
//! count:
//!
//! 1. the tile boundaries depend only on `total` (never on `--jobs`), so
//!    any merge the caller folds over the returned `Vec` sees the same
//!    operand grouping and order every time — even floating-point
//!    reductions are bit-identical;
//! 2. trial seeds are derived per index ([`crate::seed::trial_seed`]),
//!    never from worker-local state.
//!
//! Workers claim tiles from a shared atomic counter (work stealing without
//! locks), accumulate `(tile_index, result)` pairs privately, and the
//! results are placed at join time — no locking on the hot path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Trials per tile. Fixed — tile geometry must never depend on the worker
/// count (see the module docs); 64 trials amortize the claim overhead while
/// still load-balancing jagged per-trial costs.
pub const TILE: usize = 64;

/// The configured worker count (0 = unset, treat as 1).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_jobs`] scopes so concurrent tests don't interleave
/// their temporary overrides.
static JOBS_SCOPE: Mutex<()> = Mutex::new(());

/// Sets the global worker count used by [`run_tiled`] (the `--jobs` flag).
/// `0` and `1` both mean sequential execution.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// The effective worker count: the value from [`set_jobs`], else the
/// `FAIR_JOBS` environment variable, else 1.
pub fn effective_jobs() -> usize {
    let set = JOBS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    static ENV_JOBS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_JOBS.get_or_init(|| crate::config::env_usize("FAIR_JOBS", 1))
}

/// Runs `f` with the global worker count temporarily set to `jobs`,
/// restoring the previous value afterwards. Scopes are serialized, so
/// concurrent tests comparing job counts cannot interleave.
pub fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    let _guard = JOBS_SCOPE.lock().unwrap_or_else(|e| e.into_inner());
    let prev = JOBS.load(Ordering::Relaxed);
    JOBS.store(jobs, Ordering::Relaxed);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Maps `f` over the fixed tiling of `[0, total)` and returns the per-tile
/// results in tile order. `f` receives the half-open index range of one
/// tile. Sequential when the effective job count is 1 (the same tiling and
/// merge path — `--jobs 1` exercises identical code), sharded across a
/// `std::thread::scope` otherwise.
pub fn run_tiled<T, F>(total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(core::ops::Range<usize>) -> T + Sync,
{
    let tiles = total.div_ceil(TILE);
    let tile_range = |i: usize| i * TILE..((i + 1) * TILE).min(total);
    run_indexed(tiles, |i| f(tile_range(i)))
}

/// Maps `f` over `0..count` and returns the results in index order — the
/// work-distribution core under [`run_tiled`], exposed so callers with a
/// *sparse* work list (e.g. the tile-cache path computing only missing
/// tiles) get the same claim-from-an-atomic-counter scheduling without
/// inventing a dense range. Determinism contract: results depend only on
/// `f` and `count`, never on the worker count.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = effective_jobs().clamp(1, count.max(1));
    if jobs <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("simlab worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        for total in [0usize, 1, TILE - 1, TILE, TILE + 1, 10 * TILE + 7] {
            let tiles = with_jobs(4, || run_tiled(total, |r| r.collect::<Vec<_>>()));
            let flat: Vec<usize> = tiles.into_iter().flatten().collect();
            assert_eq!(flat, (0..total).collect::<Vec<_>>(), "total {total}");
        }
    }

    #[test]
    fn results_are_identical_across_job_counts() {
        let run = |jobs| {
            with_jobs(jobs, || {
                run_tiled(1000, |r| {
                    // Wrapping sum: tiles of full-range u64 seeds overflow a
                    // checked add; only schedule-independence matters here.
                    r.map(|i| crate::seed::trial_seed(7, i as u64))
                        .fold(0u64, u64::wrapping_add)
                })
            })
        };
        let expected = run(1);
        for jobs in [2, 4, 8, 64] {
            assert_eq!(run(jobs), expected, "jobs {jobs}");
        }
    }

    #[test]
    fn with_jobs_restores_previous_value() {
        set_jobs(0);
        with_jobs(3, || assert_eq!(effective_jobs(), 3));
        // Back to the unset default (1 effective, absent FAIR_JOBS).
        assert_eq!(JOBS.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_total_yields_no_tiles() {
        assert!(run_tiled(0, |_| 0u8).is_empty());
    }

    #[test]
    fn run_indexed_is_in_order_for_any_job_count() {
        for jobs in [1, 2, 4, 8] {
            let out = with_jobs(jobs, || run_indexed(37, |i| i * i));
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs {jobs}"
            );
        }
        assert!(run_indexed(0, |i| i).is_empty());
    }
}
