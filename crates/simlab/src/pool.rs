//! A bounded worker pool with explicit admission control — the job
//! submission API behind `fair-serve`.
//!
//! [`run_tiled`](crate::scheduler::run_tiled) shards the trials of *one*
//! estimate; this pool schedules *whole jobs* (one per request) across a
//! fixed set of threads with a **bounded queue**: when the queue is full,
//! [`WorkerPool::try_submit`] fails immediately instead of buffering
//! without limit, so callers can shed load (HTTP 429) rather than let
//! latency grow unboundedly. Shutdown is graceful by construction —
//! [`WorkerPool::shutdown`] stops admissions, lets the workers drain every
//! queued job, and joins them.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A submitted unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later or shed the request.
    QueueFull,
    /// The pool is shutting down; no new work is admitted.
    ShuttingDown,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    shutting_down: bool,
    /// Jobs popped from the queue and currently executing.
    in_flight: usize,
    /// Jobs fully executed (for drain accounting and tests).
    completed: u64,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that the queue gained a job or shutdown began.
    wake: Condvar,
    /// Signals `shutdown` that a job finished (for the drain wait).
    drained: Condvar,
    queue_cap: usize,
}

impl PoolShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A fixed-size thread pool over a bounded FIFO job queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (min 1) serving a queue of at most
    /// `queue_cap` (min 1) pending jobs.
    pub fn new(workers: usize, queue_cap: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            wake: Condvar::new(),
            drained: Condvar::new(),
            queue_cap: queue_cap.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueues `job`, failing fast when the queue is full or the pool is
    /// shutting down. Never blocks.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut state = self.shared.lock();
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.queue_cap {
            return Err(SubmitError::QueueFull);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Jobs waiting in the queue (not counting executing ones).
    pub fn queue_len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Jobs currently executing.
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight
    }

    /// Jobs fully executed since the pool started.
    pub fn completed(&self) -> u64 {
        self.shared.lock().completed
    }

    /// Graceful drain without consuming the pool: refuses new submissions,
    /// then blocks until the queue is empty and every in-flight job has
    /// finished. Returns the total number of jobs executed so far.
    ///
    /// Worker threads are *not* joined here — that happens when the pool is
    /// dropped — so N event loops can share one pool behind an `Arc`, have
    /// any one of them drain it at shutdown (behind their drain barrier),
    /// and let the last `Arc` drop do the join.
    pub fn drain(&self) -> u64 {
        let mut state = self.shared.lock();
        state.shutting_down = true;
        while !state.queue.is_empty() || state.in_flight > 0 {
            state = self
                .shared
                .drained
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        let completed = state.completed;
        drop(state);
        self.shared.wake.notify_all();
        completed
    }

    /// Graceful shutdown: [`drain`](WorkerPool::drain), then join the
    /// workers. Returns the total number of jobs the pool executed.
    pub fn shutdown(self) -> u64 {
        let completed = self.drain();
        // Dropping `self` joins the workers (the drop path re-checks the
        // already-set shutdown flag and finds the queue empty).
        completed
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping without `shutdown()` (e.g. a panicking test) still
        // stops the workers; queued jobs are drained the same way.
        if self.workers.is_empty() {
            return;
        }
        self.shared.lock().shutting_down = true;
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let mut state = shared.lock();
        loop {
            if let Some(job) = state.queue.pop_front() {
                state.in_flight += 1;
                drop(state);
                job();
                let mut state = shared.lock();
                state.in_flight -= 1;
                state.completed += 1;
                drop(state);
                shared.drained.notify_all();
                break;
            }
            if state.shutting_down {
                return;
            }
            state = shared.wake.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 16);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let hits = Arc::clone(&hits);
            pool.try_submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            })
            .expect("queue has room");
        }
        assert_eq!(pool.shutdown(), 10);
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Occupy the single worker until released.
        let g = Arc::clone(&gate);
        pool.try_submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .expect("first job admitted");
        // Wait for the worker to pick it up so the queue is empty.
        while pool.in_flight() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_submit(|| {}).expect("queue slot free");
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::QueueFull));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert_eq!(pool.shutdown(), 2);
    }

    #[test]
    fn shutdown_drains_every_queued_job() {
        let pool = WorkerPool::new(1, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .expect("admitted");
        }
        // Graceful: every queued job ran before shutdown returned.
        assert_eq!(pool.shutdown(), 20);
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn shared_pool_drains_from_one_handle_and_joins_on_last_drop() {
        let pool = Arc::new(WorkerPool::new(2, 64));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..12 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .expect("admitted");
        }
        // Several owners (event loops); any one can drain.
        let other_owner = Arc::clone(&pool);
        assert_eq!(pool.drain(), 12);
        assert_eq!(done.load(Ordering::SeqCst), 12);
        // After drain, submissions are refused from every handle.
        assert_eq!(
            other_owner.try_submit(|| {}),
            Err(SubmitError::ShuttingDown)
        );
        drop(other_owner);
        drop(pool); // last Arc: joins the workers
        assert_eq!(done.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn drop_without_shutdown_still_joins_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 8);
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .expect("admitted");
        }
        // The drop path drained the job before joining.
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
