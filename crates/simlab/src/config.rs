//! The workspace's **one sanctioned environment entry point** (fairlint
//! rule R4).
//!
//! Environment variables are ambient, undeclared inputs; scattering
//! `std::env::var` calls through the tree makes it impossible to audit
//! which knobs affect a Monte-Carlo run. Every runtime environment read in
//! the workspace goes through [`env_usize`] — fairlint flags any other
//! call site — so the full knob surface is this module's callers:
//! `FAIR_TRIALS` (trial count, `fair-bench`) and `FAIR_JOBS` (worker
//! count, [`crate::scheduler`]).

/// Reads a positive integer from the environment variable `name`, falling
/// back to `default` when unset. A malformed or non-positive value is
/// reported on stderr and the default applies.
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "warning: ignoring malformed {name} value {s:?} \
                     (want a positive integer); using {default}"
                );
                default
            }
        },
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_variable_yields_default() {
        assert_eq!(env_usize("FAIRLINT_TEST_UNSET_VAR", 42), 42);
    }
}
