//! The workspace's **one sanctioned environment entry point** (fairlint
//! rule R4).
//!
//! Environment variables are ambient, undeclared inputs; scattering
//! `std::env::var` calls through the tree makes it impossible to audit
//! which knobs affect a Monte-Carlo run. Every runtime environment read in
//! the workspace goes through [`env_usize`] — fairlint flags any other
//! call site — so the full knob surface is this module's callers:
//! `FAIR_TRIALS` (trial count, `fair-bench`) and `FAIR_JOBS` (worker
//! count, [`crate::scheduler`]).

/// Reads a positive integer from the environment variable `name`, falling
/// back to `default` when unset. A malformed or non-positive value is
/// reported on stderr (naming the variable, the raw value, and the cause
/// — see [`parse_env_usize`]) and the default applies.
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(s) => parse_env_usize(name, &s, default).unwrap_or_else(|msg| {
            eprintln!("warning: {msg}");
            default
        }),
        Err(_) => default,
    }
}

/// Parses `raw` as the value of the environment knob `name`. On failure
/// the error message names the offending variable, quotes the raw value
/// verbatim, states why it was rejected, and says which default applies —
/// so a typo in `FAIR_TRIALS=10O0` is diagnosable from the warning alone.
pub fn parse_env_usize(name: &str, raw: &str, default: usize) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!(
            "ignoring {name}={raw:?}: zero is not a positive integer; using default {default}"
        )),
        Err(e) => Err(format!(
            "ignoring {name}={raw:?}: {e}; want a positive integer, using default {default}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_variable_yields_default() {
        assert_eq!(env_usize("FAIRLINT_TEST_UNSET_VAR", 42), 42);
    }

    #[test]
    fn valid_values_parse_with_surrounding_whitespace() {
        assert_eq!(parse_env_usize("FAIR_TRIALS", " 250 ", 1000), Ok(250));
        assert_eq!(parse_env_usize("FAIR_JOBS", "8", 1), Ok(8));
    }

    #[test]
    fn malformed_value_names_the_variable_and_raw_value() {
        let msg = parse_env_usize("FAIR_TRIALS", "10O0", 1000).unwrap_err();
        assert!(msg.contains("FAIR_TRIALS"), "no variable name in: {msg}");
        assert!(msg.contains("\"10O0\""), "no raw value in: {msg}");
        assert!(msg.contains("invalid digit"), "no parse cause in: {msg}");
        assert!(msg.contains("default 1000"), "no default in: {msg}");
    }

    #[test]
    fn zero_is_rejected_with_a_specific_message() {
        let msg = parse_env_usize("FAIR_JOBS", "0", 4).unwrap_err();
        assert!(msg.contains("FAIR_JOBS=\"0\""), "bad message: {msg}");
        assert!(msg.contains("not a positive integer"), "bad message: {msg}");
        assert!(msg.contains("default 4"), "bad message: {msg}");
    }

    #[test]
    fn negative_and_garbage_values_report_the_cause() {
        let msg = parse_env_usize("FAIR_TRIALS", "-3", 1000).unwrap_err();
        assert!(msg.contains("FAIR_TRIALS=\"-3\""), "bad message: {msg}");
        let msg = parse_env_usize("FAIR_TRIALS", "", 1000).unwrap_err();
        assert!(
            msg.contains("cannot parse integer from empty string"),
            "bad message: {msg}"
        );
    }
}
