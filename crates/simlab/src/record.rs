//! The structured results store: machine-readable records of experiment
//! runs, persisted as JSON so fairness reproductions are re-checkable and
//! the suite's performance trajectory is trackable across commits
//! (`target/simlab/<exp>.json` per run, `BENCH_reproduce.json` aggregate).

use crate::json::Json;
use crate::metrics::LatencySummary;
use fair_trace::{ProtoSummary, QuantileSummary};

/// One measured row of an experiment table (mirrors `fair-bench`'s `Row`
/// without depending on it — simlab sits below the bench crate).
#[derive(Clone, Debug, PartialEq)]
pub struct RowRecord {
    /// What the row measures.
    pub label: String,
    /// The paper's closed-form value (`None` for qualitative checks).
    pub paper: Option<f64>,
    /// The measured value.
    pub measured: f64,
    /// 95% confidence half-width.
    pub ci: f64,
    /// Whether the row reproduced the claim.
    pub pass: bool,
}

/// One rendered report (an experiment may emit several).
#[derive(Clone, Debug, PartialEq)]
pub struct ReportRecord {
    /// Report id (e.g. `"E5"`).
    pub id: String,
    /// The paper claim under test.
    pub title: String,
    /// The measurement rows.
    pub rows: Vec<RowRecord>,
}

impl ReportRecord {
    /// Whether every row passed.
    pub fn pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }
}

/// Summary of an adaptive (CI-bounded) run: how many trials the epsilon
/// stopper actually spent versus what was requested, aggregated over every
/// `estimate()` call of the experiment. Deterministic — the stop rule is a
/// pure function of the integer tallies, so `trials_used` is bit-stable
/// across worker counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AdaptiveSummary {
    /// The CI half-width target that gates early stop.
    pub epsilon: f64,
    /// Number of `estimate()` calls that ran adaptively.
    pub estimates: u64,
    /// How many of them stopped before exhausting their budget.
    pub early_stops: u64,
    /// Total trials the experiment asked for.
    pub trials_requested: u64,
    /// Total trials actually executed.
    pub trials_used: u64,
}

impl AdaptiveSummary {
    /// Renders the record block (shared by batch records and the serve
    /// streaming wrapper, so both surfaces agree on field names).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("epsilon", Json::Num(self.epsilon))
            .field("estimates", Json::num(self.estimates as f64))
            .field("early_stops", Json::num(self.early_stops as f64))
            .field("trials_requested", Json::num(self.trials_requested as f64))
            .field("trials_used", Json::num(self.trials_used as f64))
    }
}

/// A complete record of one experiment execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpRecord {
    /// Experiment id (e.g. `"e5"`).
    pub id: String,
    /// Monte-Carlo trials per estimate.
    pub trials: usize,
    /// Base seed of the run.
    pub seed: u64,
    /// Worker count the run used.
    pub jobs: usize,
    /// Wall-clock time of the whole experiment, milliseconds.
    pub wall_ms: f64,
    /// Per-trial latency distribution (when metrics were collected).
    pub latency: Option<LatencySummary>,
    /// Per-protocol trace metrics (rounds/messages/bytes/aborts per
    /// scenario), drained from `fair_trace::metrics`. Deterministic —
    /// bit-identical for any worker count — unlike the wall-clock
    /// `latency` block.
    pub protocols: Vec<ProtoSummary>,
    /// Whether every report row passed.
    pub pass: bool,
    /// Adaptive-stopper accounting when the run used `--epsilon`
    /// (trials-used vs trials-requested); `None` for fixed-budget runs.
    pub adaptive: Option<AdaptiveSummary>,
    /// The full measurement tables.
    pub reports: Vec<ReportRecord>,
}

/// The deterministic **result document** of one estimation point: the
/// canonicalized `(experiment, trials, seed, pass, reports)` subset of a
/// record — everything a run produces that is a pure function of its
/// inputs, with the volatile observability fields (wall clock, latency)
/// excluded. This is the single source of truth shared by the batch
/// writers and `fair-serve`: for a fixed point the served body is
/// byte-identical to the batch record's result, cold or cached.
pub fn result_json(id: &str, trials: usize, seed: u64, reports: &[ReportRecord]) -> Json {
    let pass = reports.iter().all(ReportRecord::pass);
    Json::obj()
        .field("experiment", Json::str(id))
        .field("trials", Json::num(trials as f64))
        .field("seed", Json::num(seed as f64))
        .field("pass", Json::Bool(pass))
        .field(
            "reports",
            Json::Arr(reports.iter().map(report_json).collect()),
        )
        .canonical()
}

fn report_json(rep: &ReportRecord) -> Json {
    Json::obj()
        .field("id", Json::str(&rep.id))
        .field("title", Json::str(&rep.title))
        .field("pass", Json::Bool(rep.pass()))
        .field(
            "rows",
            Json::Arr(
                rep.rows
                    .iter()
                    .map(|row| {
                        Json::obj()
                            .field("label", Json::str(&row.label))
                            .field("paper", row.paper.map_or(Json::Null, Json::Num))
                            .field("measured", Json::Num(row.measured))
                            .field("ci", Json::Num(row.ci))
                            .field("pass", Json::Bool(row.pass))
                    })
                    .collect(),
            ),
        )
}

impl ExpRecord {
    /// The deterministic result document for this record's point — see
    /// [`result_json`].
    pub fn result_json(&self) -> Json {
        result_json(&self.id, self.trials, self.seed, &self.reports)
    }

    /// The full per-experiment JSON document.
    pub fn to_json(&self) -> Json {
        let doc = self
            .summary_fields()
            .field("seed", Json::num(self.seed as f64));
        doc.field(
            "reports",
            Json::Arr(self.reports.iter().map(report_json).collect()),
        )
    }

    /// The summary object embedded in the aggregate suite record:
    /// id, trial count, wall-clock, throughput, latency, pass/fail.
    pub fn summary_fields(&self) -> Json {
        let mut doc = Json::obj()
            .field("experiment", Json::str(&self.id))
            .field("trials", Json::num(self.trials as f64))
            .field("jobs", Json::num(self.jobs as f64))
            .field("wall_clock_ms", Json::Num(round3(self.wall_ms)))
            .field("pass", Json::Bool(self.pass));
        if let Some(lat) = &self.latency {
            doc = doc.field(
                "trial_latency_ns",
                Json::obj()
                    .field("count", Json::num(lat.count as f64))
                    .field("min", Json::num(lat.min_ns as f64))
                    .field("p50", Json::num(lat.p50_ns as f64))
                    .field("p99", Json::num(lat.p99_ns as f64))
                    .field("max", Json::num(lat.max_ns as f64)),
            );
        }
        if !self.protocols.is_empty() {
            doc = doc.field(
                "protocols",
                Json::Arr(self.protocols.iter().map(proto_json).collect()),
            );
        }
        if let Some(adaptive) = &self.adaptive {
            doc = doc.field("adaptive", adaptive.to_json());
        }
        doc
    }

    /// Writes `dir/<id>.json` (creating `dir`), returning the path.
    /// Rendered canonically (sorted keys), so reruns diff content-only;
    /// written atomically (temp + rename), so a killed run never leaves a
    /// truncated record.
    pub fn write(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("{}.json", self.id));
        let body = self.to_json().canonical().render_pretty() + "\n";
        fair_tiles::atomic_write(&path, body.as_bytes())?;
        Ok(path)
    }
}

/// The aggregate record of a whole `reproduce` invocation — the repo-root
/// `BENCH_reproduce.json` tracking the perf trajectory.
#[derive(Clone, Debug)]
pub struct SuiteRecord {
    /// Trials per estimate for the run.
    pub trials: usize,
    /// Worker count.
    pub jobs: usize,
    /// Base seed.
    pub seed: u64,
    /// End-to-end wall clock, milliseconds.
    pub total_wall_ms: f64,
    /// Whether every experiment passed.
    pub pass: bool,
    /// Per-experiment results.
    pub experiments: Vec<ExpRecord>,
}

impl SuiteRecord {
    /// The aggregate JSON document (per-experiment summaries, not full
    /// tables — those live in `target/simlab/<exp>.json`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("suite", Json::str("reproduce"))
            .field("trials", Json::num(self.trials as f64))
            .field("jobs", Json::num(self.jobs as f64))
            .field("seed", Json::num(self.seed as f64))
            .field("total_wall_clock_ms", Json::Num(round3(self.total_wall_ms)))
            .field("pass", Json::Bool(self.pass))
            .field(
                "experiments",
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(ExpRecord::summary_fields)
                        .collect(),
                ),
            )
    }

    /// Writes the aggregate record to `path`. Rendered canonically
    /// (sorted keys), so reruns diff content-only; written atomically
    /// (temp + rename), so a killed run never leaves a truncated record.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        let body = self.to_json().canonical().render_pretty() + "\n";
        fair_tiles::atomic_write(path, body.as_bytes())
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Renders one quantile summary block (shared by records and the serve
/// `/metrics` export, so both surfaces agree on the field names).
pub fn quantile_json(q: &QuantileSummary) -> Json {
    Json::obj()
        .field("total", Json::num(q.total as f64))
        .field("min", Json::num(q.min as f64))
        .field("p50", Json::num(q.p50 as f64))
        .field("p99", Json::num(q.p99 as f64))
        .field("max", Json::num(q.max as f64))
}

/// Renders one per-protocol metrics summary (shared by records and the
/// serve `/metrics` export).
pub fn proto_json(p: &ProtoSummary) -> Json {
    Json::obj()
        .field("name", Json::str(&p.name))
        .field("trials", Json::num(p.trials as f64))
        .field("corruptions", Json::num(p.corruptions as f64))
        .field("func_calls", Json::num(p.func_calls as f64))
        .field("aborts", Json::num(p.aborts as f64))
        .field("rounds", quantile_json(&p.rounds))
        .field("msgs", quantile_json(&p.msgs))
        .field("bytes", quantile_json(&p.bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> ExpRecord {
        ExpRecord {
            id: "e1".into(),
            trials: 100,
            seed: 0xfa1e,
            jobs: 4,
            wall_ms: 12.3456,
            latency: Some(LatencySummary {
                count: 100,
                min_ns: 10,
                p50_ns: 20,
                p99_ns: 90,
                max_ns: 95,
            }),
            protocols: vec![ProtoSummary {
                name: "Π1/honest".into(),
                trials: 100,
                corruptions: 0,
                func_calls: 100,
                aborts: 3,
                rounds: QuantileSummary {
                    count: 100,
                    total: 500,
                    min: 5,
                    p50: 5,
                    p99: 5,
                    max: 5,
                },
                msgs: QuantileSummary::default(),
                bytes: QuantileSummary::default(),
            }],
            pass: true,
            adaptive: None,
            reports: vec![ReportRecord {
                id: "E1".into(),
                title: "contract signing".into(),
                rows: vec![RowRecord {
                    label: "Π1 sup-utility".into(),
                    paper: Some(1.0),
                    measured: 0.99,
                    ci: 0.01,
                    pass: true,
                }],
            }],
        }
    }

    #[test]
    fn experiment_record_round_trips() {
        let doc = sample().to_json().render_pretty();
        let back = json::parse(&doc).unwrap();
        assert_eq!(
            json::get(&back, "experiment"),
            Some(&Json::Str("e1".into()))
        );
        assert_eq!(json::get(&back, "trials"), Some(&Json::Num(100.0)));
        assert_eq!(json::get(&back, "pass"), Some(&Json::Bool(true)));
        let lat = json::get(&back, "trial_latency_ns").unwrap();
        assert_eq!(json::get(lat, "p99"), Some(&Json::Num(90.0)));
        let protos = match json::get(&back, "protocols") {
            Some(Json::Arr(p)) => p,
            other => panic!("bad protocols {other:?}"),
        };
        assert_eq!(
            json::get(&protos[0], "name"),
            Some(&Json::Str("Π1/honest".into()))
        );
        assert_eq!(json::get(&protos[0], "aborts"), Some(&Json::Num(3.0)));
        let rounds = json::get(&protos[0], "rounds").unwrap();
        assert_eq!(json::get(rounds, "total"), Some(&Json::Num(500.0)));
        let reports = match json::get(&back, "reports") {
            Some(Json::Arr(r)) => r,
            other => panic!("bad reports {other:?}"),
        };
        let rows = match json::get(&reports[0], "rows") {
            Some(Json::Arr(r)) => r,
            other => panic!("bad rows {other:?}"),
        };
        assert_eq!(json::get(&rows[0], "measured"), Some(&Json::Num(0.99)));
    }

    #[test]
    fn suite_record_has_per_experiment_summaries() {
        let suite = SuiteRecord {
            trials: 100,
            jobs: 4,
            seed: 0xfa1e,
            total_wall_ms: 99.5,
            pass: true,
            experiments: vec![sample()],
        };
        let back = json::parse(&suite.to_json().render()).unwrap();
        assert_eq!(
            json::get(&back, "suite"),
            Some(&Json::Str("reproduce".into()))
        );
        let exps = match json::get(&back, "experiments") {
            Some(Json::Arr(e)) => e,
            other => panic!("bad experiments {other:?}"),
        };
        assert_eq!(
            json::get(&exps[0], "experiment"),
            Some(&Json::Str("e1".into()))
        );
        assert!(json::get(&exps[0], "wall_clock_ms").is_some());
        assert!(json::get(&exps[0], "pass").is_some());
        // Full tables only in the per-experiment record.
        assert!(json::get(&exps[0], "reports").is_none());
    }

    #[test]
    fn write_creates_directory_and_file() {
        let dir = std::env::temp_dir().join(format!("simlab-test-{}", std::process::id()));
        let path = sample().write(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(json::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persisted_records_have_sorted_keys() {
        let dir = std::env::temp_dir().join(format!("simlab-canon-{}", std::process::id()));
        let path = sample().write(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Every object in the persisted document has sorted keys.
        fn assert_sorted(v: &Json, text: &str) {
            match v {
                Json::Obj(fields) => {
                    assert!(
                        fields.windows(2).all(|w| w[0].0 <= w[1].0),
                        "unsorted object in: {text}"
                    );
                    fields.iter().for_each(|(_, v)| assert_sorted(v, text));
                }
                Json::Arr(items) => items.iter().for_each(|v| assert_sorted(v, text)),
                _ => {}
            }
        }
        assert_sorted(&json::parse(&text).unwrap(), &text);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adaptive_block_appears_only_when_present() {
        let mut record = sample();
        assert!(json::get(
            &json::parse(&record.to_json().render()).unwrap(),
            "adaptive"
        )
        .is_none());
        record.adaptive = Some(AdaptiveSummary {
            epsilon: 0.05,
            estimates: 3,
            early_stops: 2,
            trials_requested: 3000,
            trials_used: 1280,
        });
        let back = json::parse(&record.to_json().render()).unwrap();
        let adaptive = json::get(&back, "adaptive").expect("adaptive block");
        assert_eq!(json::get(adaptive, "epsilon"), Some(&Json::Num(0.05)));
        assert_eq!(json::get(adaptive, "trials_used"), Some(&Json::Num(1280.0)));
        assert_eq!(
            json::get(adaptive, "trials_requested"),
            Some(&Json::Num(3000.0))
        );
        assert_eq!(json::get(adaptive, "early_stops"), Some(&Json::Num(2.0)));
        // The deterministic result document stays adaptive-free: its bytes
        // identify the estimation point, not the budget that reached it.
        assert!(json::get(
            &json::parse(&record.result_json().render()).unwrap(),
            "adaptive"
        )
        .is_none());
    }

    #[test]
    fn result_json_is_the_deterministic_subset() {
        let record = sample();
        let doc = record.result_json();
        let back = json::parse(&doc.render_pretty()).unwrap();
        // Volatile observability fields are excluded...
        assert!(json::get(&back, "wall_clock_ms").is_none());
        assert!(json::get(&back, "trial_latency_ns").is_none());
        assert!(json::get(&back, "jobs").is_none());
        // ...the point identification and measurements are present.
        assert_eq!(
            json::get(&back, "experiment"),
            Some(&Json::Str("e1".into()))
        );
        assert_eq!(json::get(&back, "trials"), Some(&Json::Num(100.0)));
        assert_eq!(json::get(&back, "seed"), Some(&Json::Num(0xfa1e as f64)));
        assert_eq!(json::get(&back, "pass"), Some(&Json::Bool(true)));
        assert!(json::get(&back, "reports").is_some());
        // Already canonical: rendering is stable under canonicalization.
        assert_eq!(doc.clone().canonical().render_pretty(), doc.render_pretty());
        // The free function and the method agree.
        assert_eq!(
            result_json(&record.id, record.trials, record.seed, &record.reports),
            doc
        );
    }
}
