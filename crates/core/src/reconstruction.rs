//! Measuring reconstruction rounds (Definition 8).
//!
//! A protocol with m rounds has ℓ reconstruction rounds when an adversary
//! aborting in any of rounds 1..m−ℓ leaves the execution fair (the fair
//! functionality is still implemented), while aborting in round m−ℓ+1
//! breaks it. Empirically: sweep abort-at-round adversaries over every
//! round and find the first round whose abort produces an unfair event
//! (E₁₀).

use crate::event::Event;
use crate::payoff::Payoff;
use crate::utility::{estimate, Scenario, UtilityEstimate};

/// The result of a reconstruction-round sweep.
#[derive(Clone, Debug)]
pub struct ReconstructionReport {
    /// Total protocol rounds m (1-based count).
    pub total_rounds: usize,
    /// `fair[r]` = aborting at (0-based engine) round r left the execution
    /// fair across all trials.
    pub fair: Vec<bool>,
    /// Per-round estimates (for inspection).
    pub estimates: Vec<UtilityEstimate>,
}

impl ReconstructionReport {
    /// First unfair abort round (0-based), if any.
    pub fn first_unfair_round(&self) -> Option<usize> {
        self.fair.iter().position(|&f| !f)
    }

    /// ℓ per Definition 8: m − (first unfair 1-based round − 1). Returns 0
    /// when no abort round is unfair (the protocol is fully fair).
    pub fn reconstruction_rounds(&self) -> usize {
        match self.first_unfair_round() {
            Some(r0) => self.total_rounds - r0, // r0 is 0-based: m − ((r0+1) − 1)
            None => 0,
        }
    }
}

/// Sweeps abort rounds `0..total_rounds`; `make(r)` builds the scenario
/// whose adversary aborts at engine round `r`. An abort round is *fair*
/// when no trial produced the event E₁₀.
pub fn sweep<S: Scenario + Sync, F: Fn(usize) -> S>(
    total_rounds: usize,
    make: F,
    payoff: &Payoff,
    trials: usize,
    seed: u64,
) -> ReconstructionReport {
    let mut fair = Vec::with_capacity(total_rounds);
    let mut estimates = Vec::with_capacity(total_rounds);
    for r in 0..total_rounds {
        let est = estimate(
            &make(r),
            payoff,
            trials,
            seed.wrapping_add((r as u64) << 24),
        );
        fair.push(crate::stats::approx_zero(est.event_rate(Event::E10)));
        estimates.push(est);
    }
    ReconstructionReport {
        total_rounds,
        fair,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(fair: Vec<bool>) -> ReconstructionReport {
        let total_rounds = fair.len();
        ReconstructionReport {
            total_rounds,
            fair,
            estimates: vec![],
        }
    }

    #[test]
    fn fully_fair_protocol_has_zero_reconstruction_rounds() {
        let r = report(vec![true, true, true]);
        assert_eq!(r.first_unfair_round(), None);
        assert_eq!(r.reconstruction_rounds(), 0);
    }

    #[test]
    fn unfair_last_round_means_one_reconstruction_round() {
        let r = report(vec![true, true, false]);
        assert_eq!(r.reconstruction_rounds(), 1);
    }

    #[test]
    fn unfair_final_two_rounds_means_two() {
        let r = report(vec![true, true, false, false]);
        assert_eq!(r.first_unfair_round(), Some(2));
        assert_eq!(r.reconstruction_rounds(), 2);
    }

    #[test]
    fn unfair_from_the_start_counts_every_round() {
        let r = report(vec![false, false]);
        assert_eq!(r.reconstruction_rounds(), 2);
    }
}
