//! Corruption costs: ideal γ^C-fairness (Definition 19), cost-function
//! dominance (Definition 20), φ-fairness ⇔ cost duality (Lemma 22), and
//! the Theorem 6 checks.
//!
//! When corrupting parties carries a cost, the attacker's payoff becomes
//! `Σ γ_ij Pr[E_ij] − C(I)` (Eq. 5). For symmetric protocols the cost
//! depends only on t = |I|; a [`CostFn`] is that function `c(t)`.

use crate::analytic;
use crate::payoff::Payoff;

/// A symmetric corruption-cost function: `c[t]` is the cost of corrupting
/// `t` parties, `t = 0..=n` (with `c[0] = 0`).
///
/// # Examples
///
/// ```
/// use fair_core::cost::CostFn;
///
/// let steep = CostFn::new(vec![0.0, 0.4, 0.8]);
/// let gentle = CostFn::new(vec![0.0, 0.2, 0.4]);
/// assert!(steep.strictly_dominates(&gentle, 0.0));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct CostFn {
    costs: Vec<f64>,
}

impl CostFn {
    /// Creates a cost function from per-t costs (index = t).
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty or `costs[0] != 0`.
    pub fn new(costs: Vec<f64>) -> CostFn {
        assert!(!costs.is_empty(), "cost function needs at least t = 0");
        assert_eq!(costs[0], 0.0, "corrupting nobody is free");
        CostFn { costs }
    }

    /// The zero cost function for n parties.
    pub fn free(n: usize) -> CostFn {
        CostFn {
            costs: vec![0.0; n + 1],
        }
    }

    /// A linear corruption price: `c(t) = t · price` for `t = 0..=n` —
    /// the scenario-file shape where a single per-party price spans the
    /// whole coalition range (c(0) = 0 by construction).
    ///
    /// # Examples
    ///
    /// ```
    /// use fair_core::cost::CostFn;
    ///
    /// let c = CostFn::linear(3, 0.4);
    /// assert_eq!(c.cost(0), 0.0);
    /// assert_eq!(c.cost(2), 0.8);
    /// assert_eq!(c.max_t(), 3);
    /// ```
    pub fn linear(n: usize, price: f64) -> CostFn {
        CostFn {
            costs: (0..=n).map(|t| t as f64 * price).collect(),
        }
    }

    /// c(t).
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the defined range.
    pub fn cost(&self, t: usize) -> f64 {
        self.costs[t]
    }

    /// Largest t defined.
    pub fn max_t(&self) -> usize {
        self.costs.len() - 1
    }

    /// Definition 20: `self` weakly dominates `other` when c(t) ≥ c′(t)
    /// for every t (within tolerance, on the common range).
    pub fn weakly_dominates(&self, other: &CostFn, tol: f64) -> bool {
        let range = self.max_t().min(other.max_t());
        (1..=range).all(|t| self.cost(t) >= other.cost(t) - tol)
    }

    /// Definition 20: strict dominance — c(t) > c′(t) for every t.
    pub fn strictly_dominates(&self, other: &CostFn, tol: f64) -> bool {
        let range = self.max_t().min(other.max_t());
        (1..=range).all(|t| self.cost(t) > other.cost(t) + tol)
    }
}

/// Lemma 22: converts a measured φ(t) (best t-adversary utility, Definition
/// 21) into the corruption-cost function C with c(t) = φ(t) − s(t), where
/// s(t) is the ideal benchmark utility (best t-adversary against the dummy
/// fair protocol) — the unique cost making the protocol ideally γ^C-fair.
///
/// `phi[t-1]` holds φ(t) for t = 1..n−1.
pub fn cost_from_phi(phi: &[f64], payoff: &Payoff, n: usize) -> CostFn {
    let mut costs = vec![0.0];
    for (i, &p) in phi.iter().enumerate() {
        let t = i + 1;
        costs.push(p - analytic::ideal_fair_t(payoff, n, t));
    }
    CostFn::new(costs)
}

/// Checks ideal γ^C-fairness (Definition 19) for measured per-t utilities:
/// u(t) − c(t) ≤ s(t) + tol for every t.
pub fn is_ideally_fair(
    utilities: &[f64],
    cost: &CostFn,
    payoff: &Payoff,
    n: usize,
    tol: f64,
) -> bool {
    utilities.iter().enumerate().all(|(i, &u)| {
        let t = i + 1;
        u - cost.cost(t) <= analytic::ideal_fair_t(payoff, n, t) + tol
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relations() {
        let a = CostFn::new(vec![0.0, 0.3, 0.6]);
        let b = CostFn::new(vec![0.0, 0.2, 0.5]);
        let c = CostFn::new(vec![0.0, 0.3, 0.4]);
        assert!(a.strictly_dominates(&b, 0.0));
        assert!(a.weakly_dominates(&b, 0.0));
        assert!(a.weakly_dominates(&c, 0.0));
        assert!(!a.strictly_dominates(&c, 0.0));
        assert!(!b.weakly_dominates(&a, 0.0));
    }

    #[test]
    fn free_costs_nothing() {
        let f = CostFn::free(5);
        assert_eq!(f.max_t(), 5);
        for t in 0..=5 {
            assert_eq!(f.cost(t), 0.0);
        }
    }

    #[test]
    fn cost_from_phi_matches_lemma_22() {
        let p = Payoff::standard();
        let n = 4;
        // φ(t) for Π^Opt_nSFE is the Lemma 11 bound.
        let phi: Vec<f64> = (1..n).map(|t| analytic::optn_t(&p, n, t)).collect();
        let cost = cost_from_phi(&phi, &p, n);
        // c(t) = φ(t) − γ11.
        for t in 1..n {
            let expect = analytic::optn_t(&p, n, t) - p.g11;
            assert!((cost.cost(t) - expect).abs() < 1e-12, "t = {t}");
        }
        // With that cost the measured utilities are ideally fair…
        assert!(is_ideally_fair(&phi, &cost, &p, n, 1e-9));
        // …and any strictly-dominated (cheaper) cost fails.
        let cheaper = CostFn::new(
            (0..n)
                .map(|t| if t == 0 { 0.0 } else { cost.cost(t) - 0.05 })
                .collect(),
        );
        assert!(cost.strictly_dominates(&cheaper, 0.0));
        assert!(!is_ideally_fair(&phi, &cheaper, &p, n, 1e-9));
    }

    #[test]
    #[should_panic(expected = "corrupting nobody is free")]
    fn nonzero_base_cost_panics() {
        let _ = CostFn::new(vec![1.0]);
    }
}
