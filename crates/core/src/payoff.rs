//! Payoff vectors ~γ and the classes Γ_fair and Γ⁺_fair.
//!
//! The adversary's preferences are a vector γ = (γ₀₀, γ₀₁, γ₁₀, γ₁₁)
//! assigning a real payoff to each fairness event. The paper restricts
//! attention to the natural class Γ_fair (Section 3):
//!
//! ```text
//! 0 = γ01 ≤ min{γ00, γ11}   and   max{γ00, γ11} < γ10
//! ```
//!
//! and, for the multi-party results, the subclass Γ⁺_fair with the extra
//! assumption γ₀₀ ≤ γ₁₁ ("the attacker prefers learning the output over
//! not learning it", Section 4.2).

use crate::event::Event;

/// A fairness payoff vector (γ₀₀, γ₀₁, γ₁₀, γ₁₁).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Payoff {
    /// Payoff for E₀₀ (nobody gets the output).
    pub g00: f64,
    /// Payoff for E₀₁ (only honest parties get the output).
    pub g01: f64,
    /// Payoff for E₁₀ (only the adversary gets the output).
    pub g10: f64,
    /// Payoff for E₁₁ (everyone gets the output).
    pub g11: f64,
}

/// Errors from payoff-vector validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PayoffError {
    /// γ₀₁ must equal 0 (the wlog normalization of Section 3).
    G01NotZero,
    /// γ₀₁ must be the minimum entry.
    G01NotMinimum,
    /// γ₁₀ must strictly dominate γ₀₀ and γ₁₁.
    G10NotMaximum,
    /// Γ⁺_fair additionally requires γ₀₀ ≤ γ₁₁.
    G00ExceedsG11,
    /// Payoffs must be finite.
    NotFinite,
}

impl core::fmt::Display for PayoffError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PayoffError::G01NotZero => "γ01 must be 0 (normalization)",
            PayoffError::G01NotMinimum => "γ01 must be the minimum payoff",
            PayoffError::G10NotMaximum => "γ10 must strictly exceed γ00 and γ11",
            PayoffError::G00ExceedsG11 => "Γ+fair requires γ00 ≤ γ11",
            PayoffError::NotFinite => "payoffs must be finite",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for PayoffError {}

impl Payoff {
    /// Creates a payoff vector without validation.
    pub fn new(g00: f64, g01: f64, g10: f64, g11: f64) -> Payoff {
        Payoff { g00, g01, g10, g11 }
    }

    /// Creates a payoff vector, checking membership in Γ_fair.
    ///
    /// # Errors
    ///
    /// Returns a [`PayoffError`] if the vector violates the class
    /// constraints.
    pub fn gamma_fair(g00: f64, g10: f64, g11: f64) -> Result<Payoff, PayoffError> {
        let p = Payoff {
            g00,
            g01: 0.0,
            g10,
            g11,
        };
        p.check_gamma_fair()?;
        Ok(p)
    }

    /// Creates a payoff vector, checking membership in Γ⁺_fair.
    ///
    /// # Errors
    ///
    /// Returns a [`PayoffError`] if the vector violates the class
    /// constraints.
    pub fn gamma_fair_plus(g00: f64, g10: f64, g11: f64) -> Result<Payoff, PayoffError> {
        let p = Payoff::gamma_fair(g00, g10, g11)?;
        if p.g00 > p.g11 {
            return Err(PayoffError::G00ExceedsG11);
        }
        Ok(p)
    }

    /// The canonical Γ⁺_fair vector used throughout the experiments:
    /// γ = (0.25, 0, 1, 0.5).
    ///
    /// # Examples
    ///
    /// ```
    /// use fair_core::{Event, Payoff};
    ///
    /// let g = Payoff::standard();
    /// assert!(g.is_gamma_fair_plus());
    /// assert_eq!(g.value(Event::E10), 1.0); // the fairness breach pays most
    /// ```
    pub fn standard() -> Payoff {
        Payoff::gamma_fair_plus(0.25, 1.0, 0.5).expect("standard vector is valid")
    }

    /// The Gordon–Katz comparison vector γ = (0, 0, 1, 0) from Section 5.
    pub fn gk() -> Payoff {
        Payoff {
            g00: 0.0,
            g01: 0.0,
            g10: 1.0,
            g11: 0.0,
        }
    }

    /// Validates membership in Γ_fair.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn check_gamma_fair(&self) -> Result<(), PayoffError> {
        if ![self.g00, self.g01, self.g10, self.g11]
            .iter()
            .all(|x| x.is_finite())
        {
            return Err(PayoffError::NotFinite);
        }
        if !crate::stats::approx_zero(self.g01) {
            return Err(PayoffError::G01NotZero);
        }
        if self.g01 > self.g00.min(self.g11) {
            return Err(PayoffError::G01NotMinimum);
        }
        if self.g00.max(self.g11) >= self.g10 {
            return Err(PayoffError::G10NotMaximum);
        }
        Ok(())
    }

    /// Whether the vector is in Γ⁺_fair.
    pub fn is_gamma_fair_plus(&self) -> bool {
        self.check_gamma_fair().is_ok() && self.g00 <= self.g11
    }

    /// The deposit-model payoff behind the penalty scenario families
    /// (financial fairness à la Friolo–Massacci–Ngo): each party escrows
    /// `deposit` before the protocol starts and forfeits it by aborting.
    /// The forfeit lands exactly on the abort events — E₀₀ and E₁₀ are
    /// the outcomes the adversary can only provoke by denying the honest
    /// parties their output — so γ₀₀ and γ₁₀ each drop by `deposit`.
    ///
    /// The result deliberately *leaves* Γ_fair once `deposit > 0` (γ₀₁
    /// stays 0 but need no longer be the minimum): that is the point of a
    /// penalty — it reshapes the adversary's preferences until the abort
    /// is no longer the optimum.
    ///
    /// # Examples
    ///
    /// ```
    /// use fair_core::Payoff;
    ///
    /// // A deposit covering γ00 makes aborting no better than honesty.
    /// let g = Payoff::standard().with_abort_penalty(0.25);
    /// assert_eq!(g.g00, 0.0);
    /// assert_eq!(g.g10, 0.75);
    /// assert_eq!(g.g11, 0.5); // completing forfeits nothing
    /// ```
    pub fn with_abort_penalty(&self, deposit: f64) -> Payoff {
        Payoff {
            g00: self.g00 - deposit,
            g01: self.g01,
            g10: self.g10 - deposit,
            g11: self.g11,
        }
    }

    /// The payoff of an event.
    pub fn value(&self, e: Event) -> f64 {
        match e {
            Event::E00 => self.g00,
            Event::E01 => self.g01,
            Event::E10 => self.g10,
            Event::E11 => self.g11,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vector_is_valid_plus() {
        let p = Payoff::standard();
        assert!(p.is_gamma_fair_plus());
        assert_eq!(p.value(Event::E10), 1.0);
        assert_eq!(p.value(Event::E01), 0.0);
        assert_eq!(p.value(Event::E00), 0.25);
        assert_eq!(p.value(Event::E11), 0.5);
    }

    #[test]
    fn gk_vector_is_gamma_fair_but_not_plus() {
        // (0,0,1,0): γ00 = γ11 = 0 ≤ … fine for Γfair; γ00 ≤ γ11 holds too
        // (0 ≤ 0), so it is actually in Γ+fair as well.
        let p = Payoff::gk();
        assert!(p.check_gamma_fair().is_ok());
        assert!(p.is_gamma_fair_plus());
    }

    #[test]
    fn rejects_nonzero_g01() {
        let p = Payoff::new(0.0, 0.5, 1.0, 0.5);
        assert_eq!(p.check_gamma_fair(), Err(PayoffError::G01NotZero));
    }

    #[test]
    fn rejects_g10_not_strictly_max() {
        assert_eq!(
            Payoff::gamma_fair(0.0, 1.0, 1.0).unwrap_err(),
            PayoffError::G10NotMaximum
        );
        assert_eq!(
            Payoff::gamma_fair(2.0, 1.0, 0.0).unwrap_err(),
            PayoffError::G10NotMaximum
        );
    }

    #[test]
    fn rejects_negative_entries_below_g01() {
        assert_eq!(
            Payoff::gamma_fair(-0.5, 1.0, 0.5).unwrap_err(),
            PayoffError::G01NotMinimum
        );
    }

    #[test]
    fn plus_rejects_g00_above_g11() {
        assert_eq!(
            Payoff::gamma_fair_plus(0.6, 1.0, 0.5).unwrap_err(),
            PayoffError::G00ExceedsG11
        );
        // …but plain Γfair accepts it.
        assert!(Payoff::gamma_fair(0.6, 1.0, 0.5).is_ok());
    }

    #[test]
    fn rejects_non_finite() {
        let p = Payoff::new(f64::NAN, 0.0, 1.0, 0.5);
        assert_eq!(p.check_gamma_fair(), Err(PayoffError::NotFinite));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!PayoffError::G10NotMaximum.to_string().is_empty());
    }
}
