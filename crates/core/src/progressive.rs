//! Progressive (CI-bounded) estimation context.
//!
//! An adaptive run trades a fixed trial budget for a precision target: the
//! estimator keeps executing tile batches until the 95% confidence
//! half-width drops to `epsilon` (or the budget runs out), emitting a
//! running [`Update`] after every batch. The stop rule is a pure function
//! of the integer tallies, so adaptive results are bit-identical for every
//! worker count — exactly like fixed-budget ones.
//!
//! The context travels thread-locally: [`scoped`] arms the calling thread
//! with an epsilon (and an optional live-update channel), runs a closure —
//! typically a whole experiment making many [`crate::estimate`] calls —
//! and returns the closure's value together with an aggregated [`Summary`]
//! of trials used versus requested. `estimate` checks the ambient context
//! and diverts to its chunked adaptive path when one is armed; with no
//! context armed, nothing changes.
//!
//! Updates cross threads through an `mpsc` channel rather than a callback
//! so the consumer (e.g. the serve streaming endpoint, which must write
//! progress frames to a live socket) never needs a `'static` borrow of the
//! producer's state.

use std::cell::RefCell;
use std::sync::mpsc::Sender;

/// One progress frame: the running estimate after a tile batch.
#[derive(Clone, Debug, PartialEq)]
pub struct Update {
    /// Scenario name of the `estimate()` call reporting.
    pub scenario: String,
    /// Trials the call was asked for.
    pub requested: usize,
    /// Trials tallied so far.
    pub trials: usize,
    /// Running mean payoff.
    pub mean: f64,
    /// Running 95% confidence half-width.
    pub ci: f64,
    /// Whether this is the call's final frame (converged or exhausted).
    pub done: bool,
}

/// Aggregated adaptive accounting over a [`scoped`] region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// `estimate()` calls that ran adaptively.
    pub estimates: u64,
    /// Calls that stopped before exhausting their budget.
    pub early_stops: u64,
    /// Total trials requested.
    pub trials_requested: u64,
    /// Total trials executed.
    pub trials_used: u64,
}

struct Ctx {
    epsilon: f64,
    tx: Option<Sender<Update>>,
    summary: Summary,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Runs `f` with adaptive estimation armed at precision `epsilon` on this
/// thread, returning `f`'s value and the aggregated accounting. Frames go
/// to `tx` when provided (send failures are ignored — a hung-up consumer
/// must not stop the computation). Scopes restore the previous context on
/// exit, including unwinds.
pub fn scoped<T>(epsilon: f64, tx: Option<Sender<Update>>, f: impl FnOnce() -> T) -> (T, Summary) {
    struct Restore(Option<Ctx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CTX.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CTX.with(|c| {
        c.borrow_mut().replace(Ctx {
            epsilon,
            tx,
            summary: Summary::default(),
        })
    });
    let mut restore = Restore(prev);
    let value = f();
    let summary = CTX.with(|c| {
        let mut slot = c.borrow_mut();
        let summary = slot.as_ref().map(|ctx| ctx.summary).unwrap_or_default();
        *slot = restore.0.take();
        summary
    });
    core::mem::forget(restore);
    (value, summary)
}

/// The armed epsilon, if adaptive estimation is active on this thread.
pub(crate) fn epsilon() -> Option<f64> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| ctx.epsilon))
}

/// Emits a progress frame to the armed channel (no-op otherwise).
pub(crate) fn emit(update: Update) {
    CTX.with(|c| {
        if let Some(Ctx { tx: Some(tx), .. }) = c.borrow().as_ref() {
            let _ = tx.send(update);
        }
    });
}

/// Books one finished adaptive `estimate()` call into the scope summary.
pub(crate) fn note(requested: usize, used: usize, early: bool) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.summary.estimates += 1;
            ctx.summary.early_stops += u64::from(early);
            ctx.summary.trials_requested += requested as u64;
            ctx.summary.trials_used += used as u64;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_thread_has_no_context() {
        assert_eq!(epsilon(), None);
        emit(Update {
            scenario: "x".into(),
            requested: 1,
            trials: 1,
            mean: 0.0,
            ci: 0.0,
            done: true,
        }); // no-op
        note(10, 10, false); // no-op
    }

    #[test]
    fn scoped_arms_and_restores() {
        let ((), summary) = scoped(0.25, None, || {
            assert_eq!(epsilon(), Some(0.25));
            note(1000, 256, true);
            note(500, 500, false);
            // Nested scopes shadow and restore.
            let ((), inner) = scoped(0.5, None, || note(10, 10, false));
            assert_eq!(inner.estimates, 1);
            assert_eq!(epsilon(), Some(0.25));
        });
        assert_eq!(epsilon(), None);
        assert_eq!(summary.estimates, 2);
        assert_eq!(summary.early_stops, 1);
        assert_eq!(summary.trials_requested, 1500);
        assert_eq!(summary.trials_used, 756);
    }

    #[test]
    fn frames_cross_the_channel() {
        let (tx, rx) = std::sync::mpsc::channel();
        let ((), _) = scoped(0.1, Some(tx), || {
            emit(Update {
                scenario: "s".into(),
                requested: 100,
                trials: 64,
                mean: 0.5,
                ci: 0.2,
                done: false,
            });
        });
        let got = rx.recv().expect("one frame");
        assert_eq!(got.trials, 64);
        assert!(!got.done);
        assert!(rx.try_recv().is_err());
    }
}
