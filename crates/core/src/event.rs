//! The paper's fairness events E₀₀, E₀₁, E₁₀, E₁₁ and the classification of
//! protocol executions into them.
//!
//! Step 2 of the paper's utility definition (Section 3) indexes events by a
//! string `ij ∈ {0,1}²`: `i = 1` iff the simulator asks the functionality
//! F^⊥_sfe for a corrupted party's output (the adversary *learns* the
//! output), `j = 1` iff the honest parties receive their output. The
//! paper's upper-bound proofs construct, for each protocol, the explicit
//! payoff-minimizing simulator and show which event it provokes as a
//! function of the real execution; [`classify`] implements exactly that
//! decision function:
//!
//! * the adversary "learned the output" iff its claimed value equals the
//!   ground-truth output `y` of this execution (over-claiming is impossible
//!   because the claim is validated against the ledger);
//! * the honest parties "received their output" according to an explicit
//!   [`HonestCriterion`] — by default any non-⊥ output counts (the
//!   F^⊥-style guarantee where a locally computed default evaluation is a
//!   legitimate output); the stricter `Equals` criterion is used for the
//!   F^$ analyses of Section 5 where early aborts replace outputs by random
//!   values.

use fair_runtime::{ExecutionResult, Value};

/// A fairness event E_ij (paper, Section 3, Step 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Event {
    /// Neither the adversary nor the honest parties get the output.
    E00,
    /// Only the honest parties get the output (also: no corruptions).
    E01,
    /// Only the adversary gets the output — the fairness breach.
    E10,
    /// Both get the output (also: all parties corrupted).
    E11,
}

impl core::fmt::Display for Event {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Event::E00 => "E00",
            Event::E01 => "E01",
            Event::E10 => "E10",
            Event::E11 => "E11",
        };
        write!(f, "{s}")
    }
}

impl Event {
    /// All four events, in index order.
    pub const ALL: [Event; 4] = [Event::E00, Event::E01, Event::E10, Event::E11];
}

/// When do the honest parties count as having "received their output"?
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HonestCriterion {
    /// Any non-⊥ output counts (the F^⊥_sfe semantics: a default-input
    /// local evaluation after an abort is still an output).
    NonBot,
    /// Only the true output `y` counts (the strict criterion used when
    /// analyzing F^$-style protocols whose aborts yield random outputs).
    EqualsTruth,
}

/// Classifies an execution into its fairness event.
///
/// `truth` is the ground-truth output `y` of this execution (normally the
/// ledger fact `"y"`; see [`truth_from_ledger`]).
///
/// Edge cases follow the paper: with no corruptions the event is E₀₁ ("this
/// event also accounts for cases where the adversary does not corrupt any
/// party"); with all parties corrupted it is E₁₁.
pub fn classify(
    res: &ExecutionResult,
    n: usize,
    truth: &Value,
    criterion: &HonestCriterion,
) -> Event {
    if res.corrupted.len() == n {
        return Event::E11;
    }
    let adversary_learned =
        !res.corrupted.is_empty() && res.learned.as_ref() == Some(truth) && !truth.is_bot();
    let honest_got = match criterion {
        HonestCriterion::NonBot => res.all_honest_got_output(),
        HonestCriterion::EqualsTruth => res.all_honest_output(truth),
    };
    match (adversary_learned, honest_got) {
        (false, false) => Event::E00,
        (false, true) => Event::E01,
        (true, false) => Event::E10,
        (true, true) => Event::E11,
    }
}

/// Extracts the ground-truth output from the ledger fact `"y"`.
///
/// Returns [`Value::Bot`] if the fact was never recorded (e.g. the
/// evaluation aborted before completing) — in that case no claim can match
/// it, correctly yielding `adversary_learned = false`.
pub fn truth_from_ledger(res: &ExecutionResult) -> Value {
    res.ledger.get("y").cloned().unwrap_or(Value::Bot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_runtime::{Ledger, PartyId};
    use std::collections::{BTreeMap, BTreeSet};

    fn result(
        honest: &[(usize, Value)],
        corrupted: &[usize],
        learned: Option<Value>,
    ) -> ExecutionResult {
        ExecutionResult {
            outputs: honest
                .iter()
                .map(|(i, v)| (PartyId(*i), v.clone()))
                .collect::<BTreeMap<_, _>>(),
            corrupted: corrupted
                .iter()
                .map(|&i| PartyId(i))
                .collect::<BTreeSet<_>>(),
            learned,
            ledger: Ledger::new(),
            rounds: 1,
        }
    }

    const N: usize = 2;

    fn y() -> Value {
        Value::Scalar(42)
    }

    #[test]
    fn no_corruption_is_e01() {
        let res = result(&[(0, y()), (1, y())], &[], None);
        assert_eq!(
            classify(&res, N, &y(), &HonestCriterion::NonBot),
            Event::E01
        );
    }

    #[test]
    fn all_corrupted_is_e11() {
        let res = result(&[], &[0, 1], None);
        assert_eq!(
            classify(&res, N, &y(), &HonestCriterion::NonBot),
            Event::E11
        );
    }

    #[test]
    fn learn_and_deny_is_e10() {
        let res = result(&[(1, Value::Bot)], &[0], Some(y()));
        assert_eq!(
            classify(&res, N, &y(), &HonestCriterion::NonBot),
            Event::E10
        );
    }

    #[test]
    fn both_get_output_is_e11() {
        let res = result(&[(1, y())], &[0], Some(y()));
        assert_eq!(
            classify(&res, N, &y(), &HonestCriterion::NonBot),
            Event::E11
        );
    }

    #[test]
    fn nobody_learns_is_e00() {
        let res = result(&[(1, Value::Bot)], &[0], None);
        assert_eq!(
            classify(&res, N, &y(), &HonestCriterion::NonBot),
            Event::E00
        );
    }

    #[test]
    fn wrong_claim_does_not_count_as_learning() {
        let res = result(&[(1, y())], &[0], Some(Value::Scalar(13)));
        assert_eq!(
            classify(&res, N, &y(), &HonestCriterion::NonBot),
            Event::E01
        );
    }

    #[test]
    fn bot_truth_never_counts_as_learned() {
        let res = result(&[(1, Value::Bot)], &[0], Some(Value::Bot));
        assert_eq!(
            classify(&res, N, &Value::Bot, &HonestCriterion::NonBot),
            Event::E00
        );
    }

    #[test]
    fn default_output_counts_under_nonbot_but_not_equals() {
        // Honest party computed a default-input evaluation ≠ y.
        let res = result(&[(1, Value::Scalar(7))], &[0], Some(y()));
        assert_eq!(
            classify(&res, N, &y(), &HonestCriterion::NonBot),
            Event::E11
        );
        assert_eq!(
            classify(&res, N, &y(), &HonestCriterion::EqualsTruth),
            Event::E10
        );
    }

    #[test]
    fn truth_from_ledger_defaults_to_bot() {
        let res = result(&[], &[], None);
        assert_eq!(truth_from_ledger(&res), Value::Bot);
    }

    #[test]
    fn display_names() {
        assert_eq!(Event::E10.to_string(), "E10");
        assert_eq!(Event::ALL.len(), 4);
    }
}
