//! Small statistics toolkit backing the estimator's confidence claims.
//!
//! The experiments assert inequalities like "measured ≤ paper bound" with
//! statistical tolerances; this module provides the standard machinery —
//! Wilson score intervals for proportions, normal-approximation intervals
//! for bounded means, and the two-proportion z-test used when two
//! protocols' event rates are compared head to head.

/// A two-sided confidence interval.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// The midpoint.
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// The half-width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// The 97.5% standard-normal quantile (two-sided 95%).
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Default absolute tolerance for floating-point comparisons in estimator
/// code. Direct `==`/`!=` on floats is forbidden inside the determinism
/// boundary (fairlint rule D2); compare through [`approx_eq`] /
/// [`approx_zero`] instead so platform-dependent rounding cannot flip an
/// experiment verdict.
pub const F64_TOL: f64 = 1e-12;

/// Whether two floats agree within an absolute tolerance.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Whether a float is zero within [`F64_TOL`].
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= F64_TOL
}

/// Wilson score interval for a binomial proportion — better behaved than
/// the normal approximation near 0 and 1, which is exactly where the
/// fairness experiments live (events that "never happen" under a correct
/// protocol).
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials`.
pub fn wilson(successes: usize, trials: usize, z: f64) -> Interval {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes bounded by trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let spread = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    // At the extremes the exact endpoints are 0 resp. 1; snap them to
    // avoid 1e-18-scale floating-point residue.
    let lo = if successes == 0 {
        0.0
    } else {
        (center - spread).max(0.0)
    };
    let hi = if successes == trials {
        1.0
    } else {
        (center + spread).min(1.0)
    };
    Interval { lo, hi }
}

/// Normal-approximation confidence interval for the mean of a bounded
/// variable, from the sample mean and sample variance.
pub fn mean_interval(mean: f64, variance: f64, trials: usize, z: f64) -> Interval {
    assert!(trials > 0, "need at least one trial");
    let se = (variance.max(0.0) / trials as f64).sqrt();
    Interval {
        lo: mean - z * se,
        hi: mean + z * se,
    }
}

/// Two-proportion z-statistic: how significantly do two event rates
/// differ? Returns the z-score (positive when `a` exceeds `b`); values
/// beyond ±[`Z_95`] reject equality at the 5% level.
///
/// # Panics
///
/// Panics if either trial count is zero.
pub fn two_proportion_z(
    successes_a: usize,
    trials_a: usize,
    successes_b: usize,
    trials_b: usize,
) -> f64 {
    assert!(trials_a > 0 && trials_b > 0, "need trials on both sides");
    let (na, nb) = (trials_a as f64, trials_b as f64);
    let pa = successes_a as f64 / na;
    let pb = successes_b as f64 / nb;
    let pooled = (successes_a + successes_b) as f64 / (na + nb);
    let se = (pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb)).sqrt();
    if approx_zero(se) {
        return 0.0;
    }
    (pa - pb) / se
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wilson_centers_near_the_proportion() {
        let i = wilson(500, 1000, Z_95);
        assert!(i.contains(0.5));
        assert!(i.half_width() < 0.04);
    }

    #[test]
    fn wilson_handles_extremes_gracefully() {
        let zero = wilson(0, 100, Z_95);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0 && zero.hi < 0.06, "hi = {}", zero.hi);
        let one = wilson(100, 100, Z_95);
        assert_eq!(one.hi, 1.0);
        assert!(one.lo > 0.94);
    }

    #[test]
    fn mean_interval_shrinks_with_trials() {
        let wide = mean_interval(0.5, 0.25, 100, Z_95);
        let tight = mean_interval(0.5, 0.25, 10_000, Z_95);
        assert!(tight.half_width() < wide.half_width() / 5.0);
        assert!(wide.contains(0.5));
    }

    #[test]
    fn z_test_flags_real_differences_only() {
        // Same rates: |z| small.
        let same = two_proportion_z(250, 1000, 260, 1000);
        assert!(same.abs() < Z_95, "z = {same}");
        // Clearly different rates: |z| large, signed.
        let diff = two_proportion_z(400, 1000, 250, 1000);
        assert!(diff > Z_95, "z = {diff}");
        let neg = two_proportion_z(250, 1000, 400, 1000);
        assert!(neg < -Z_95);
    }

    #[test]
    fn z_test_degenerate_pool_is_zero() {
        assert_eq!(two_proportion_z(0, 10, 0, 10), 0.0);
        assert_eq!(two_proportion_z(10, 10, 10, 10), 0.0);
    }

    proptest! {
        #[test]
        fn prop_wilson_is_a_valid_interval(s in 0usize..=500, extra in 0usize..500) {
            let n = s + extra.max(1);
            let i = wilson(s, n, Z_95);
            prop_assert!(i.lo >= 0.0 && i.hi <= 1.0 && i.lo <= i.hi);
            // The point estimate always lies inside.
            prop_assert!(i.contains(s as f64 / n as f64));
        }

        #[test]
        fn prop_wilson_narrows_with_n(s_rate in 0.0f64..=1.0) {
            let small = wilson((s_rate * 100.0) as usize, 100, Z_95);
            let large = wilson((s_rate * 10_000.0) as usize, 10_000, Z_95);
            prop_assert!(large.half_width() <= small.half_width() + 1e-9);
        }
    }
}
