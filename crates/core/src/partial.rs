//! Machinery for the 1/p-security ("partial fairness") comparisons of
//! Section 5.
//!
//! 1/p-security allows the real and ideal ensembles to be distinguished
//! with advantage up to 1/p. The experiments estimate acceptance
//! probabilities of an environment/distinguisher against the real protocol
//! and against an ideal world (dummy parties + F^$ + simulator), and report
//! the advantage with confidence bounds. Lemma 26's separation (the leaky
//! protocol Π̃ is 1/2-secure yet fails the F^$-based notion) is asserted on
//! exactly these reports.

/// An estimated acceptance probability.
#[derive(Clone, Copy, Debug)]
pub struct Acceptance {
    /// Empirical acceptance rate.
    pub rate: f64,
    /// 95% confidence half-width.
    pub ci: f64,
    /// Trials.
    pub trials: usize,
}

/// Estimates the acceptance probability of a boolean experiment over
/// seeded runs.
///
/// Per-trial seeds come from [`fair_simlab::trial_seed`] and trials are
/// sharded across the simlab scheduler; like [`crate::utility::estimate`],
/// the result is bit-identical for every worker count (hit counts are
/// integers, so shard merges are exact).
///
/// # Examples
///
/// ```
/// use fair_core::partial::acceptance;
///
/// // trial_seed output is uniform over u64, so `seed % 4 == 0` accepts a
/// // quarter of the time.
/// let a = acceptance(|seed| seed % 4 == 0, 1000, 0);
/// assert!((a.rate - 0.25).abs() < 0.05);
/// ```
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn acceptance<F: Fn(u64) -> bool + Sync>(run: F, trials: usize, seed: u64) -> Acceptance {
    assert!(trials > 0, "need at least one trial");
    let hits: usize = fair_simlab::run_tiled(trials, |range| {
        range
            .filter(|&t| run(fair_simlab::trial_seed(seed, t as u64)))
            .count()
    })
    .into_iter()
    .sum();
    let p = hits as f64 / trials as f64;
    // Wilson half-width: well-behaved at rates near 0 or 1 (a plain normal
    // approximation reports zero uncertainty there).
    let ci = crate::stats::wilson(hits, trials, crate::stats::Z_95).half_width();
    Acceptance {
        rate: p,
        ci,
        trials,
    }
}

/// A distinguishing experiment: the same environment run against the real
/// protocol and against an ideal world.
#[derive(Clone, Copy, Debug)]
pub struct Distinguish {
    /// Acceptance against the real protocol.
    pub real: Acceptance,
    /// Acceptance against the ideal world (with the candidate simulator).
    pub ideal: Acceptance,
}

impl Distinguish {
    /// The estimated advantage `|Pr(real) − Pr(ideal)|`.
    pub fn advantage(&self) -> f64 {
        (self.real.rate - self.ideal.rate).abs()
    }

    /// Combined CI half-width of the advantage.
    pub fn ci(&self) -> f64 {
        self.real.ci + self.ideal.ci
    }

    /// Whether the advantage is statistically above `bound` (a *failure*
    /// of simulation at quality `bound`).
    pub fn exceeds(&self, bound: f64) -> bool {
        self.advantage() - self.ci() > bound
    }

    /// Whether the advantage is statistically at most `bound`.
    pub fn within(&self, bound: f64) -> bool {
        self.advantage() - self.ci() <= bound
    }
}

/// Runs a distinguishing experiment.
pub fn distinguish<R: Fn(u64) -> bool + Sync, I: Fn(u64) -> bool + Sync>(
    real: R,
    ideal: I,
    trials: usize,
    seed: u64,
) -> Distinguish {
    Distinguish {
        real: acceptance(real, trials, seed),
        // Decorrelate the ideal runs from the real runs.
        ideal: acceptance(ideal, trials, seed ^ 0x9e37_79b9_7f4a_7c15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_of_constant_experiments() {
        let a = acceptance(|_| true, 100, 0);
        assert_eq!(a.rate, 1.0);
        // Wilson intervals stay honest at the extremes: the uncertainty is
        // small but *not* zero after only 100 trials.
        assert!(a.ci > 0.0 && a.ci < 0.04, "ci = {}", a.ci);
        let b = acceptance(|_| false, 100, 0);
        assert_eq!(b.rate, 0.0);
    }

    #[test]
    fn acceptance_of_biased_coin() {
        // Deterministic pseudo-coin from the seed.
        let a = acceptance(|s| s.wrapping_mul(0x9e3779b97f4a7c15) % 4 == 0, 4000, 7);
        assert!((a.rate - 0.25).abs() < 0.05, "rate = {}", a.rate);
        assert!(a.ci > 0.0);
    }

    #[test]
    fn identical_worlds_have_no_advantage() {
        let d = distinguish(|s| s % 2 == 0, |s| s % 2 == 0, 2000, 3);
        assert!(d.within(0.05));
        assert!(!d.exceeds(0.05));
    }

    #[test]
    fn separated_worlds_show_advantage() {
        let d = distinguish(|_| true, |s| s % 2 == 0, 2000, 4);
        assert!((d.advantage() - 0.5).abs() < 0.05);
        assert!(d.exceeds(0.3));
        assert!(!d.within(0.3));
    }
}
