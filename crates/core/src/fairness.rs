//! The relative-fairness relation (Definition 1) and optimal fairness
//! (Definition 2).
//!
//! A protocol Π is *at least as γ-fair* as Π′ when the best attacker
//! utility against Π is (up to negligible terms) no larger than against
//! Π′. Empirically, "negligible" becomes a statistical tolerance: the
//! comparison accounts for both estimates' confidence intervals.

use crate::utility::UtilityEstimate;

/// The outcome of comparing two protocols' best-attacker utilities.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FairnessOrder {
    /// Π is strictly fairer than Π′ (statistically separated).
    StrictlyFairer,
    /// The two are statistically indistinguishable — each is at least as
    /// fair as the other.
    Equivalent,
    /// Π is strictly less fair than Π′.
    StrictlyLessFair,
}

impl core::fmt::Display for FairnessOrder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            FairnessOrder::StrictlyFairer => "strictly fairer",
            FairnessOrder::Equivalent => "equally fair (within tolerance)",
            FairnessOrder::StrictlyLessFair => "strictly less fair",
        };
        write!(f, "{s}")
    }
}

/// An assessed protocol: its best attack and the full strategy sweep.
#[derive(Clone, Debug)]
pub struct Assessment {
    /// Protocol name.
    pub protocol: String,
    /// Estimate for the best strategy in the library.
    pub best: UtilityEstimate,
    /// Estimates for every strategy tried.
    pub all: Vec<UtilityEstimate>,
}

impl Assessment {
    /// Builds an assessment from per-strategy estimates.
    ///
    /// # Panics
    ///
    /// Panics if `all` is empty.
    pub fn from_estimates(protocol: &str, all: Vec<UtilityEstimate>) -> Assessment {
        assert!(!all.is_empty(), "need at least one strategy estimate");
        let best = all
            .iter()
            .max_by(|a, b| a.mean.partial_cmp(&b.mean).expect("finite means"))
            .expect("nonempty")
            .clone();
        Assessment {
            protocol: protocol.to_string(),
            best,
            all,
        }
    }

    /// The empirical sup-utility.
    pub fn sup_utility(&self) -> f64 {
        self.best.mean
    }
}

/// Compares Π against Π′ per Definition 1 (is Π at least as fair as Π′?),
/// with statistical tolerance `tol`.
pub fn compare(pi: &Assessment, pi_prime: &Assessment, tol: f64) -> FairnessOrder {
    let sep = pi.best.ci + pi_prime.best.ci + tol;
    let diff = pi.sup_utility() - pi_prime.sup_utility();
    if diff < -sep {
        FairnessOrder::StrictlyFairer
    } else if diff > sep {
        FairnessOrder::StrictlyLessFair
    } else {
        FairnessOrder::Equivalent
    }
}

/// Whether Π is at least as fair as Π′ (Definition 1) — i.e. not strictly
/// less fair.
pub fn at_least_as_fair(pi: &Assessment, pi_prime: &Assessment, tol: f64) -> bool {
    compare(pi, pi_prime, tol) != FairnessOrder::StrictlyLessFair
}

/// Checks empirical optimality (Definition 2) of `pi` against a set of
/// competitor protocols: `pi` must be at least as fair as every one of
/// them.
pub fn is_optimal_among(pi: &Assessment, others: &[Assessment], tol: f64) -> bool {
    others.iter().all(|o| at_least_as_fair(pi, o, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(name: &str, mean: f64, ci: f64) -> UtilityEstimate {
        UtilityEstimate {
            name: name.into(),
            mean,
            ci,
            trials: 100,
            event_counts: [0, 0, 0, 100],
        }
    }

    fn assessment(name: &str, mean: f64, ci: f64) -> Assessment {
        Assessment::from_estimates(name, vec![est("only", mean, ci)])
    }

    #[test]
    fn best_is_the_max_strategy() {
        let a = Assessment::from_estimates(
            "pi",
            vec![
                est("weak", 0.3, 0.01),
                est("strong", 0.9, 0.01),
                est("mid", 0.5, 0.01),
            ],
        );
        assert_eq!(a.best.name, "strong");
        assert_eq!(a.sup_utility(), 0.9);
        assert_eq!(a.all.len(), 3);
    }

    #[test]
    fn comparison_directions() {
        let lo = assessment("lo", 0.5, 0.01);
        let hi = assessment("hi", 0.9, 0.01);
        assert_eq!(compare(&lo, &hi, 0.0), FairnessOrder::StrictlyFairer);
        assert_eq!(compare(&hi, &lo, 0.0), FairnessOrder::StrictlyLessFair);
        assert_eq!(compare(&lo, &lo, 0.0), FairnessOrder::Equivalent);
    }

    #[test]
    fn tolerance_merges_close_estimates() {
        let a = assessment("a", 0.50, 0.01);
        let b = assessment("b", 0.52, 0.01);
        assert_eq!(compare(&a, &b, 0.05), FairnessOrder::Equivalent);
        assert_eq!(compare(&a, &b, 0.0), FairnessOrder::StrictlyFairer);
    }

    #[test]
    fn optimality_requires_dominating_everyone() {
        let opt = assessment("opt", 0.75, 0.01);
        let worse = assessment("worse", 0.9, 0.01);
        let equal = assessment("equal", 0.75, 0.01);
        assert!(is_optimal_among(
            &opt,
            &[worse.clone(), equal.clone()],
            0.01
        ));
        assert!(!is_optimal_among(&worse, &[opt, equal], 0.01));
    }

    #[test]
    fn order_display() {
        assert_eq!(FairnessOrder::StrictlyFairer.to_string(), "strictly fairer");
    }

    #[test]
    #[should_panic(expected = "at least one strategy")]
    fn empty_assessment_panics() {
        let _ = Assessment::from_estimates("x", vec![]);
    }
}
