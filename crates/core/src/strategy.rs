//! The attack-strategy library: the paper's proof adversaries, generic over
//! the protocol.
//!
//! * [`LockAndAbort`] — the strategies A₁/A₂ (Lemma 7), their mix A_gen
//!   (Theorem 4), and the multi-party A_ī (Lemma 12): corrupt a set of
//!   parties, run them honestly, and in every round *fork* each corrupted
//!   party's state machine to test whether it already "holds the actual
//!   output" (i.e. running it forward with everyone else silent yields the
//!   real output); the moment it does, record the output and go silent —
//!   an abort *before* sending this round's messages (the rushing attack).
//! * [`HonestUntilRound`] — the abort-at-round-r sweep used to measure
//!   reconstruction rounds (Definition 8) and to explore protocols without
//!   lock structure.
//! * [`RunHonestly`] — corrupt parties but follow the protocol (the
//!   baseline that collects γ₁₁).
//!
//! All strategies take a [`CorruptionPlan`] and an `is_real` predicate the
//! experiment supplies (e.g. "differs from the default-input evaluation",
//! exactly the test A₁ performs in the paper's Lemma 7).

use std::sync::Arc;

use fair_runtime::{AdvControl, Adversary, Envelope, PartyId, RoundView, Value};
use rand::rngs::StdRng;
use rand::RngExt;

/// How many look-ahead rounds a fork is run for when testing whether a
/// corrupted party holds its output.
pub const LOOKAHEAD_ROUNDS: usize = 64;

/// Which parties to corrupt at the start.
#[derive(Clone, Debug)]
pub enum CorruptionPlan {
    /// No corruptions.
    None,
    /// A fixed set of (0-based) party indices.
    Fixed(Vec<usize>),
    /// One uniformly random party (the mix of Theorem 4 / Lemma 13).
    RandomSingleton,
    /// Every party except the given one (the A_ī strategies of Lemma 12).
    AllBut(usize),
    /// Every party except one chosen uniformly (the mixed A_ī).
    RandomAllButOne,
    /// A uniformly random subset of the given size.
    RandomSubset(usize),
}

impl CorruptionPlan {
    /// Draws the concrete corruption set for `n` parties.
    ///
    /// # Panics
    ///
    /// Panics if the plan references parties outside `0..n` or a subset
    /// size above `n`.
    pub fn choose(&self, n: usize, rng: &mut StdRng) -> Vec<PartyId> {
        match self {
            CorruptionPlan::None => Vec::new(),
            CorruptionPlan::Fixed(set) => {
                assert!(set.iter().all(|&i| i < n), "fixed corruption out of range");
                set.iter().map(|&i| PartyId(i)).collect()
            }
            CorruptionPlan::RandomSingleton => {
                vec![PartyId(rng.random_range(0..n))]
            }
            CorruptionPlan::AllBut(i) => {
                assert!(*i < n, "AllBut index out of range");
                (0..n).filter(|&j| j != *i).map(PartyId).collect()
            }
            CorruptionPlan::RandomAllButOne => {
                let spare = rng.random_range(0..n);
                (0..n).filter(|&j| j != spare).map(PartyId).collect()
            }
            CorruptionPlan::RandomSubset(t) => {
                assert!(*t <= n, "subset size above n");
                // Partial Fisher–Yates over the index set.
                let mut idx: Vec<usize> = (0..n).collect();
                for i in 0..*t {
                    let j = rng.random_range(i..n);
                    idx.swap(i, j);
                }
                let mut out: Vec<PartyId> = idx[..*t].iter().map(|&i| PartyId(i)).collect();
                out.sort();
                out
            }
        }
    }
}

/// Predicate deciding whether a forked party's output is the *real*
/// protocol output (as opposed to ⊥ or a default-input evaluation).
pub type IsReal = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

/// An `is_real` predicate accepting any non-⊥ value.
pub fn any_output() -> IsReal {
    Arc::new(|v: &Value| !v.is_bot())
}

/// An `is_real` predicate accepting any non-⊥ value different from the
/// given default evaluation (the test from Lemma 7's A₁).
pub fn differs_from(default: Value) -> IsReal {
    Arc::new(move |v: &Value| !v.is_bot() && *v != default)
}

/// An `is_real` predicate accepting any non-⊥ value outside the given set
/// of default evaluations (used when the corrupted party is chosen at
/// random and either party's default evaluation must be excluded).
pub fn differs_from_any(defaults: Vec<Value>) -> IsReal {
    Arc::new(move |v: &Value| !v.is_bot() && !defaults.contains(v))
}

/// The two lookahead inboxes for a corrupted party: this round's delivered
/// messages, and the honest messages currently in flight (visible now by
/// rushing, arriving next round).
fn lookahead_inboxes<M: Clone>(
    view: &RoundView<'_, M>,
    ctrl: &AdvControl<'_, M>,
    pid: PartyId,
) -> [Vec<Envelope<M>>; 2] {
    let delivered: Vec<Envelope<M>> = ctrl.inbox_of(pid).to_vec();
    let in_flight: Vec<Envelope<M>> = view
        .rushing
        .iter()
        .filter(|e| match e.to {
            fair_runtime::Destination::Party(q) => q == pid,
            fair_runtime::Destination::All => true,
            _ => false,
        })
        .cloned()
        .collect();
    [delivered, in_flight]
}

fn fork_output<M: Clone>(
    ctrl: &mut AdvControl<'_, M>,
    pid: PartyId,
    inboxes: &[Vec<Envelope<M>>],
    round: usize,
    n: usize,
) -> Option<Value> {
    let mut fork = ctrl.machine(pid).clone_box();
    let ctx = fair_runtime::RoundCtx { id: pid, n, round };
    fair_runtime::run_isolated_seq(&mut fork, ctx, inboxes, LOOKAHEAD_ROUNDS)
}

/// The lock-and-abort strategy (A₁/A₂/A_gen/A_ī).
pub struct LockAndAbort {
    plan: CorruptionPlan,
    is_real: IsReal,
    corrupted: Vec<PartyId>,
    learned: Option<Value>,
    aborted: bool,
}

impl LockAndAbort {
    /// Creates the strategy.
    pub fn new(plan: CorruptionPlan, is_real: IsReal) -> LockAndAbort {
        LockAndAbort {
            plan,
            is_real,
            corrupted: Vec::new(),
            learned: None,
            aborted: false,
        }
    }

    /// The concrete corruption set chosen for this execution.
    pub fn corrupted(&self) -> &[PartyId] {
        &self.corrupted
    }
}

impl<M: Clone + core::fmt::Debug> Adversary<M> for LockAndAbort {
    fn initial_corruptions(&mut self, n: usize, rng: &mut StdRng) -> Vec<PartyId> {
        self.corrupted = self.plan.choose(n, rng);
        self.corrupted.clone()
    }

    fn on_round(
        &mut self,
        view: &RoundView<'_, M>,
        ctrl: &mut AdvControl<'_, M>,
        _rng: &mut StdRng,
    ) {
        if self.aborted {
            return; // silent forever
        }
        // Lock test for every corrupted party, under rushing visibility.
        for &pid in &self.corrupted {
            let inboxes = lookahead_inboxes(view, ctrl, pid);
            if let Some(v) = fork_output(ctrl, pid, &inboxes, view.round, view.n) {
                if (self.is_real)(&v) {
                    self.learned = Some(v);
                    self.aborted = true;
                    return; // withhold this round's messages: the abort
                }
            }
        }
        // No lock: behave honestly.
        for &pid in &self.corrupted {
            ctrl.run_honestly(pid);
        }
    }

    fn learned(&self) -> Option<Value> {
        self.learned.clone()
    }
}

/// Runs corrupted parties honestly until (not including) `abort_round`,
/// then goes silent. At the abort round it performs one fork lookahead to
/// record whatever output the corrupted coalition already holds.
pub struct HonestUntilRound {
    plan: CorruptionPlan,
    abort_round: usize,
    is_real: IsReal,
    corrupted: Vec<PartyId>,
    learned: Option<Value>,
}

impl HonestUntilRound {
    /// Creates the strategy; `abort_round = 0` is the silent-from-the-start
    /// adversary.
    pub fn new(plan: CorruptionPlan, abort_round: usize, is_real: IsReal) -> HonestUntilRound {
        HonestUntilRound {
            plan,
            abort_round,
            is_real,
            corrupted: Vec::new(),
            learned: None,
        }
    }
}

impl<M: Clone + core::fmt::Debug> Adversary<M> for HonestUntilRound {
    fn initial_corruptions(&mut self, n: usize, rng: &mut StdRng) -> Vec<PartyId> {
        self.corrupted = self.plan.choose(n, rng);
        self.corrupted.clone()
    }

    fn on_round(
        &mut self,
        view: &RoundView<'_, M>,
        ctrl: &mut AdvControl<'_, M>,
        _rng: &mut StdRng,
    ) {
        if view.round < self.abort_round {
            for &pid in &self.corrupted {
                ctrl.run_honestly(pid);
            }
            return;
        }
        if view.round == self.abort_round {
            for &pid in &self.corrupted {
                let inboxes = lookahead_inboxes(view, ctrl, pid);
                if let Some(v) = fork_output(ctrl, pid, &inboxes, view.round, view.n) {
                    if (self.is_real)(&v) {
                        self.learned = Some(v);
                        break;
                    }
                }
            }
        }
        // Silent at and after the abort round.
    }

    fn learned(&self) -> Option<Value> {
        self.learned.clone()
    }
}

/// Corrupts parties but follows the protocol to the end, reporting the
/// coalition's real output (the γ₁₁ baseline).
pub struct RunHonestly {
    plan: CorruptionPlan,
    is_real: IsReal,
    corrupted: Vec<PartyId>,
    learned: Option<Value>,
}

impl RunHonestly {
    /// Creates the strategy.
    pub fn new(plan: CorruptionPlan, is_real: IsReal) -> RunHonestly {
        RunHonestly {
            plan,
            is_real,
            corrupted: Vec::new(),
            learned: None,
        }
    }
}

impl<M: Clone + core::fmt::Debug> Adversary<M> for RunHonestly {
    fn initial_corruptions(&mut self, n: usize, rng: &mut StdRng) -> Vec<PartyId> {
        self.corrupted = self.plan.choose(n, rng);
        self.corrupted.clone()
    }

    fn on_round(
        &mut self,
        _view: &RoundView<'_, M>,
        ctrl: &mut AdvControl<'_, M>,
        _rng: &mut StdRng,
    ) {
        for &pid in &self.corrupted {
            ctrl.run_honestly(pid);
            if self.learned.is_none() {
                if let Some(v) = ctrl.machine(pid).output() {
                    if (self.is_real)(&v) {
                        self.learned = Some(v);
                    }
                }
            }
        }
    }

    fn learned(&self) -> Option<Value> {
        self.learned.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corruption_plans_produce_expected_sets() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(CorruptionPlan::None.choose(5, &mut rng).is_empty());
        assert_eq!(
            CorruptionPlan::Fixed(vec![1, 3]).choose(5, &mut rng),
            vec![PartyId(1), PartyId(3)]
        );
        assert_eq!(
            CorruptionPlan::AllBut(2).choose(4, &mut rng),
            vec![PartyId(0), PartyId(1), PartyId(3)]
        );
        let single = CorruptionPlan::RandomSingleton.choose(5, &mut rng);
        assert_eq!(single.len(), 1);
        assert!(single[0].0 < 5);
        let almost_all = CorruptionPlan::RandomAllButOne.choose(6, &mut rng);
        assert_eq!(almost_all.len(), 5);
        let subset = CorruptionPlan::RandomSubset(3).choose(7, &mut rng);
        assert_eq!(subset.len(), 3);
        assert!(subset.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
    }

    #[test]
    fn random_singleton_is_roughly_uniform() {
        let mut counts = [0usize; 3];
        for seed in 0..600 {
            let mut rng = StdRng::seed_from_u64(seed);
            let c = CorruptionPlan::RandomSingleton.choose(3, &mut rng);
            counts[c[0].0] += 1;
        }
        for &c in &counts {
            assert!(c > 120, "party chosen {c}/600 times");
        }
    }

    #[test]
    fn random_subset_covers_all_parties() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            for p in CorruptionPlan::RandomSubset(2).choose(5, &mut rng) {
                seen.insert(p.0);
            }
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn predicates_behave() {
        let any = any_output();
        assert!(any(&Value::Scalar(0)));
        assert!(!any(&Value::Bot));
        let diff = differs_from(Value::Scalar(7));
        assert!(diff(&Value::Scalar(8)));
        assert!(!diff(&Value::Scalar(7)));
        assert!(!diff(&Value::Bot));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fixed_plan_validates_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = CorruptionPlan::Fixed(vec![9]).choose(3, &mut rng);
    }
}
