//! Closed-form utilities from the paper's theorems — the "paper" column of
//! every experiment table.

use crate::payoff::Payoff;

/// Theorem 3 / Theorem 4: the optimal two-party utility
/// (γ₁₀ + γ₁₁) / 2.
pub fn opt2(p: &Payoff) -> f64 {
    (p.g10 + p.g11) / 2.0
}

/// Lemma 11: the utility bound for a t-adversary against Π^Opt_nSFE,
/// (t·γ₁₀ + (n−t)·γ₁₁) / n.
///
/// # Panics
///
/// Panics unless `t < n`.
pub fn optn_t(p: &Payoff, n: usize, t: usize) -> f64 {
    assert!(t < n, "t-adversary must leave an honest party");
    (t as f64 * p.g10 + (n - t) as f64 * p.g11) / n as f64
}

/// Lemma 13: the best adversary against Π^Opt_nSFE corrupts n−1 parties,
/// achieving ((n−1)·γ₁₀ + γ₁₁) / n.
pub fn optn_best(p: &Payoff, n: usize) -> f64 {
    optn_t(p, n, n - 1)
}

/// Lemmas 14/16: the utility-balanced sum Σ_{t=1}^{n−1} u(A_t) =
/// (n−1)(γ₁₀ + γ₁₁)/2.
pub fn balance_sum(p: &Payoff, n: usize) -> f64 {
    (n as f64 - 1.0) * (p.g10 + p.g11) / 2.0
}

/// Lemma 17: the best t-adversary utility against the honest-majority GMW
/// protocol Π^{1/2}_GMW — full fairness below n/2, total unfairness at or
/// above it.
///
/// # Panics
///
/// Panics unless `1 <= t < n`.
pub fn gmw_half_t(p: &Payoff, n: usize, t: usize) -> f64 {
    assert!(t >= 1 && t < n, "need 1 <= t < n");
    if t > (n - 1) / 2 {
        // t >= ceil(n/2): the coalition can reconstruct alone and block.
        p.g10
    } else {
        p.g11
    }
}

/// Lemma 17: Σ_t of the above.
pub fn gmw_half_sum(p: &Payoff, n: usize) -> f64 {
    (1..n).map(|t| gmw_half_t(p, n, t)).sum()
}

/// Lemma 18: the 1-adversary utility against the artificial
/// optimal-but-not-balanced protocol:
/// γ₁₀/n + (n−1)/n · (γ₁₀ + γ₁₁)/2.
pub fn artificial_t1(p: &Payoff, n: usize) -> f64 {
    p.g10 / n as f64 + (n as f64 - 1.0) / n as f64 * (p.g10 + p.g11) / 2.0
}

/// Introduction: the best attacker against the naive contract-signing
/// protocol Π1 always gets γ₁₀.
pub fn pi1(p: &Payoff) -> f64 {
    p.g10
}

/// Introduction: Π2 (coin-toss ordering) halves the attacker's edge:
/// (γ₁₀ + γ₁₁)/2.
pub fn pi2(p: &Payoff) -> f64 {
    (p.g10 + p.g11) / 2.0
}

/// The ideal benchmark s(t): the best t-adversary utility against the
/// dummy protocol around the *fair* F_sfe. With γ ∈ Γ⁺_fair the adversary's
/// best move is to complete the evaluation: γ₁₁ for 1 ≤ t ≤ n−1 (γ₀₁ for
/// t = 0, γ₁₁ for t = n).
pub fn ideal_fair_t(p: &Payoff, n: usize, t: usize) -> f64 {
    assert!(t <= n, "t at most n");
    if t == 0 {
        p.g01
    } else {
        p.g00.max(p.g11)
    }
}

/// Theorems 23/24: the Gordon–Katz payoff bound 1/p for γ = (0, 0, 1, 0).
pub fn gk_bound(p_param: u64) -> f64 {
    1.0 / p_param as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Payoff {
        Payoff::standard() // (0.25, 0, 1, 0.5)
    }

    #[test]
    fn two_party_bounds() {
        assert_eq!(opt2(&g()), 0.75);
        assert_eq!(pi1(&g()), 1.0);
        assert_eq!(pi2(&g()), 0.75);
    }

    #[test]
    fn multi_party_bounds() {
        // n=3: t=1 -> (1 + 2*0.5)/3 = 2/3; t=2 -> (2 + 0.5)/3 = 5/6.
        assert!((optn_t(&g(), 3, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((optn_t(&g(), 3, 2) - 2.5 / 3.0).abs() < 1e-12);
        assert_eq!(optn_best(&g(), 3), optn_t(&g(), 3, 2));
        // The t-utility increases with t (more corruptions help).
        for n in 2..8 {
            for t in 1..n - 1 {
                assert!(optn_t(&g(), n, t) < optn_t(&g(), n, t + 1));
            }
        }
    }

    #[test]
    fn balance_bound_matches_sum_of_optn() {
        for n in 2..8 {
            let sum: f64 = (1..n).map(|t| optn_t(&g(), n, t)).sum();
            assert!((sum - balance_sum(&g(), n)).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn gmw_half_is_fair_below_half_unfair_above() {
        // n = 4: t=1 fair (γ11), t=2,3 unfair (γ10).
        assert_eq!(gmw_half_t(&g(), 4, 1), 0.5);
        assert_eq!(gmw_half_t(&g(), 4, 2), 1.0);
        assert_eq!(gmw_half_t(&g(), 4, 3), 1.0);
        // n = 5: t=1,2 fair; t=3,4 unfair.
        assert_eq!(gmw_half_t(&g(), 5, 2), 0.5);
        assert_eq!(gmw_half_t(&g(), 5, 3), 1.0);
    }

    #[test]
    fn gmw_half_violates_balance_exactly_for_even_n() {
        for n in 3..9 {
            let excess = gmw_half_sum(&g(), n) - balance_sum(&g(), n);
            if n % 2 == 0 {
                // Lemma 17: for even n the sum exceeds the balance bound by
                // (γ10 − γ11)/2 > 0 (the extra coalition at t = n/2 that
                // flips from fully-fair to fully-unfair).
                assert!((excess - (g().g10 - g().g11) / 2.0).abs() < 1e-9, "n = {n}");
            } else {
                assert!(excess.abs() < 1e-9, "n = {n}");
            }
        }
    }

    #[test]
    fn artificial_t1_exceeds_optn_t1() {
        // Lemma 18: the artificial protocol's 1-adversary beats Π^Opt_nSFE's.
        for n in 3..8 {
            assert!(artificial_t1(&g(), n) > optn_t(&g(), n, 1), "n = {n}");
        }
    }

    #[test]
    fn ideal_fair_benchmark() {
        assert_eq!(ideal_fair_t(&g(), 4, 0), 0.0);
        assert_eq!(ideal_fair_t(&g(), 4, 1), 0.5);
        assert_eq!(ideal_fair_t(&g(), 4, 4), 0.5);
    }

    #[test]
    fn gk_bound_is_one_over_p() {
        assert_eq!(gk_bound(2), 0.5);
        assert_eq!(gk_bound(10), 0.1);
    }
}
