#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Utility-based fairness for cryptographic protocols — the primary
//! contribution of *"How Fair is Your Protocol? A Utility-based Approach to
//! Protocol Optimality"* (Garay, Katz, Tackmann, Zikas; PODC 2015), as an
//! executable framework.
//!
//! The paper measures a protocol's fairness by the utility the *best*
//! attacker can extract from it, where utility is assigned through four
//! events (did the adversary learn the output? did honest parties?) and a
//! preference vector γ ∈ Γ_fair. This crate provides:
//!
//! * [`event`] — the events E₀₀/E₀₁/E₁₀/E₁₁ and execution classification.
//! * [`payoff`] — payoff vectors and the classes Γ_fair / Γ⁺_fair.
//! * [`utility`] — Monte-Carlo estimation of u_A(Π, A) over seeded
//!   executions ([`Scenario`], [`estimate`], [`best_of`]).
//! * [`strategy`] — the paper's proof adversaries as a generic library
//!   (lock-and-abort, abort-round sweeps, honest baselines).
//! * [`fairness`] — the relative-fairness partial order (Def. 1) and
//!   optimality (Def. 2).
//! * [`game`] — the RPD attack game in matrix form (minimax designs,
//!   saddle points; Remark 1 / footnote 1).
//! * [`balance`] — utility-balanced fairness (Def. 5) and φ-fairness
//!   (Def. 21).
//! * [`cost`] — corruption costs: ideal γ^C-fairness (Def. 19), dominance
//!   (Def. 20) and the Lemma 22 duality.
//! * [`reconstruction`] — reconstruction-round measurement (Def. 8).
//! * [`stats`] — Wilson intervals and proportion tests backing the
//!   estimator's confidence claims.
//! * [`partial`] — distinguishing experiments for the 1/p-security
//!   comparison (Section 5).
//! * [`analytic`] — the paper's closed-form bounds, used as the reference
//!   column in every experiment.
//!
//! [`Scenario`]: utility::Scenario
//! [`estimate`]: utility::estimate
//! [`best_of`]: utility::best_of

pub mod analytic;
pub mod balance;
pub mod cost;
pub mod event;
pub mod fairness;
pub mod game;
pub mod partial;
pub mod payoff;
pub mod progressive;
pub mod reconstruction;
pub mod stats;
pub mod strategy;
pub mod utility;

pub use event::{classify, truth_from_ledger, Event, HonestCriterion};
pub use payoff::{Payoff, PayoffError};
pub use utility::{best_of, estimate, run_once, run_once_traced, Scenario, Trial, UtilityEstimate};
