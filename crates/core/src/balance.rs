//! Utility-balanced fairness (Definition 5) and φ-fairness (Definition 21).
//!
//! A protocol is utility-balanced γ-fair when the *sum* over t of the best
//! t-adversary utilities is minimal; Lemma 14 pins that minimum at
//! (n−1)(γ₁₀+γ₁₁)/2 for the functions of Lemma 16. This module assembles
//! per-t assessments into a balance report and checks the bound.

use crate::analytic;
use crate::fairness::Assessment;
use crate::payoff::Payoff;

/// Per-corruption-budget assessment of a protocol.
#[derive(Clone, Debug)]
pub struct BalanceReport {
    /// Protocol name.
    pub protocol: String,
    /// `per_t[t-1]` is the best t-adversary assessment, t = 1..n−1.
    pub per_t: Vec<Assessment>,
    /// Number of parties.
    pub n: usize,
}

impl BalanceReport {
    /// Builds a report from per-t assessments (index 0 ↔ t = 1).
    ///
    /// # Panics
    ///
    /// Panics unless exactly n−1 assessments are given.
    pub fn new(protocol: &str, n: usize, per_t: Vec<Assessment>) -> BalanceReport {
        assert_eq!(per_t.len(), n - 1, "need one assessment per t in 1..n");
        BalanceReport {
            protocol: protocol.to_string(),
            per_t,
            n,
        }
    }

    /// The measured sum Σ_t u_A(Π, A_t).
    pub fn sum(&self) -> f64 {
        self.per_t.iter().map(|a| a.sup_utility()).sum()
    }

    /// Aggregate CI half-width of the sum.
    pub fn sum_ci(&self) -> f64 {
        self.per_t.iter().map(|a| a.best.ci).sum()
    }

    /// The best t-adversary utility, the φ(t) of Definition 21.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= t <= n−1`.
    pub fn phi(&self, t: usize) -> f64 {
        assert!(t >= 1 && t < self.n, "t in 1..n");
        self.per_t[t - 1].sup_utility()
    }

    /// Whether the measured sum meets the utility-balanced bound
    /// (n−1)(γ₁₀+γ₁₁)/2 within tolerance (Lemma 14 direction).
    pub fn is_balanced(&self, payoff: &Payoff, tol: f64) -> bool {
        self.sum() <= analytic::balance_sum(payoff, self.n) + self.sum_ci() + tol
    }

    /// The measured excess over the balance bound (positive = violation,
    /// the criterion after Lemma 14: "if the sum non-negligibly exceeds
    /// this bound, the protocol is not utility-balanced").
    pub fn excess(&self, payoff: &Payoff) -> f64 {
        self.sum() - analytic::balance_sum(payoff, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityEstimate;

    fn assessment(mean: f64) -> Assessment {
        Assessment::from_estimates(
            "p",
            vec![UtilityEstimate {
                name: "s".into(),
                mean,
                ci: 0.005,
                trials: 1000,
                event_counts: [0; 4],
            }],
        )
    }

    #[test]
    fn balanced_protocol_meets_bound() {
        let p = Payoff::standard();
        let n = 4;
        // Π^Opt_nSFE per-t utilities (Lemma 11) sum exactly to the bound.
        let per_t: Vec<Assessment> = (1..n)
            .map(|t| assessment(analytic::optn_t(&p, n, t)))
            .collect();
        let report = BalanceReport::new("optn", n, per_t);
        assert!(report.is_balanced(&p, 1e-9));
        assert!(report.excess(&p).abs() < 1e-9);
        assert_eq!(report.phi(1), analytic::optn_t(&p, 4, 1));
    }

    #[test]
    fn gmw_half_even_n_violates_bound() {
        let p = Payoff::standard();
        let n = 4;
        let per_t: Vec<Assessment> = (1..n)
            .map(|t| assessment(analytic::gmw_half_t(&p, n, t)))
            .collect();
        let report = BalanceReport::new("gmw-1/2", n, per_t);
        assert!(!report.is_balanced(&p, 0.01));
        assert!((report.excess(&p) - (p.g10 - p.g11) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn gmw_half_odd_n_meets_bound() {
        let p = Payoff::standard();
        let n = 5;
        let per_t: Vec<Assessment> = (1..n)
            .map(|t| assessment(analytic::gmw_half_t(&p, n, t)))
            .collect();
        let report = BalanceReport::new("gmw-1/2", n, per_t);
        assert!(report.is_balanced(&p, 0.05));
    }

    #[test]
    #[should_panic(expected = "one assessment per t")]
    fn wrong_arity_panics() {
        let _ = BalanceReport::new("x", 4, vec![assessment(0.1)]);
    }
}
