//! The RPD attack game (Section 2, Remark 1, footnote 1): a zero-sum
//! sequential game between the protocol *designer* D and the *attacker* A.
//!
//! The designer moves first by picking a protocol from a design space; the
//! attacker, seeing the choice, picks an attack strategy. The attacker's
//! payoff is u_A(Π, A); the game being zero-sum, the designer's is its
//! negation, so the designer plays minimax: choose the protocol whose
//! *best* attack is cheapest. A protocol is a solution of the game — and
//! optimally fair in the sense of Definition 2 restricted to the design
//! space — exactly when it attains the minimax value.
//!
//! [`Game`] holds the (measured or analytic) utility matrix and answers
//! the standard questions: best response, minimax row, game value, saddle
//! point. Experiment E15 instantiates it with the biased-i* family of
//! Π^Opt_2SFE designs and confirms the paper's uniform choice is the
//! designer's optimum.

/// A finite zero-sum attack game in matrix form: `u[d][a]` is the
/// attacker's utility when the designer plays row `d` and the attacker
/// column `a`.
#[derive(Clone, Debug)]
pub struct Game {
    designer_moves: Vec<String>,
    attacker_moves: Vec<String>,
    utilities: Vec<Vec<f64>>,
}

impl Game {
    /// Creates a game from labeled moves and the utility matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape disagrees with the move lists, any row
    /// is empty, or a utility is not finite.
    pub fn new(
        designer_moves: Vec<String>,
        attacker_moves: Vec<String>,
        utilities: Vec<Vec<f64>>,
    ) -> Game {
        assert_eq!(
            utilities.len(),
            designer_moves.len(),
            "one row per designer move"
        );
        assert!(
            !designer_moves.is_empty(),
            "designer needs at least one move"
        );
        assert!(
            !attacker_moves.is_empty(),
            "attacker needs at least one move"
        );
        for row in &utilities {
            assert_eq!(
                row.len(),
                attacker_moves.len(),
                "one column per attacker move"
            );
            assert!(row.iter().all(|u| u.is_finite()), "finite utilities");
        }
        Game {
            designer_moves,
            attacker_moves,
            utilities,
        }
    }

    /// The designer's move labels.
    pub fn designer_moves(&self) -> &[String] {
        &self.designer_moves
    }

    /// The attacker's move labels.
    pub fn attacker_moves(&self) -> &[String] {
        &self.attacker_moves
    }

    /// The attacker's utility for a move pair.
    pub fn utility(&self, d: usize, a: usize) -> f64 {
        self.utilities[d][a]
    }

    /// The attacker's best response to designer move `d`: the maximizing
    /// column and its utility.
    pub fn best_response(&self, d: usize) -> (usize, f64) {
        self.utilities[d]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, &u)| (i, u))
            .expect("nonempty row")
    }

    /// The designer's minimax move: the row whose best response is
    /// smallest, with that value (the game value under sequential play).
    pub fn minimax(&self) -> (usize, f64) {
        (0..self.utilities.len())
            .map(|d| (d, self.best_response(d).1))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty matrix")
    }

    /// Whether `(d, a)` is a pure saddle point (within tolerance): `a` is a
    /// best response to `d`, and no designer move improves on `d` given
    /// best responses — i.e. the protocol "tames its adversary in an
    /// optimal way" (footnote 1).
    pub fn is_saddle_point(&self, d: usize, a: usize, tol: f64) -> bool {
        let (_, br) = self.best_response(d);
        if self.utility(d, a) < br - tol {
            return false;
        }
        let (_, value) = self.minimax();
        br <= value + tol
    }

    /// Renders the matrix as an aligned table (for experiment reports).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = self
            .designer_moves
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!("{:<w$}", "design", w = w));
        for a in &self.attacker_moves {
            out.push_str(&format!("  {a:>12}"));
        }
        out.push('\n');
        for (d, row) in self.utilities.iter().enumerate() {
            out.push_str(&format!("{:<w$}", self.designer_moves[d], w = w));
            for u in row {
                out.push_str(&format!("  {u:>12.4}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The analytic biased-Π^Opt_2SFE game: designer picks q = Pr[i* = 1],
    /// attacker picks which party to corrupt with lock-and-abort.
    /// u(q, corrupt p1) = q·γ10 + (1−q)·γ11 and symmetrically.
    fn biased_game() -> Game {
        let (g10, g11) = (1.0, 0.5);
        let qs = [0.1, 0.3, 0.5, 0.7, 0.9];
        let utilities = qs
            .iter()
            .map(|q| vec![q * g10 + (1.0 - q) * g11, (1.0 - q) * g10 + q * g11])
            .collect();
        Game::new(
            qs.iter().map(|q| format!("q={q}")).collect(),
            vec!["corrupt p1".into(), "corrupt p2".into()],
            utilities,
        )
    }

    #[test]
    fn best_response_picks_the_heavier_side() {
        let g = biased_game();
        // q = 0.9: corrupting p1 (row 4, col 0) is best.
        assert_eq!(g.best_response(4).0, 0);
        // q = 0.1: corrupting p2 is best.
        assert_eq!(g.best_response(0).0, 1);
    }

    #[test]
    fn minimax_is_the_uniform_design() {
        let g = biased_game();
        let (d, value) = g.minimax();
        assert_eq!(g.designer_moves()[d], "q=0.5");
        assert!((value - 0.75).abs() < 1e-12, "game value (γ10+γ11)/2");
    }

    #[test]
    fn uniform_design_is_a_saddle_point() {
        let g = biased_game();
        // At q = 0.5 both attacker moves are best responses; either forms
        // a saddle point.
        assert!(g.is_saddle_point(2, 0, 1e-9));
        assert!(g.is_saddle_point(2, 1, 1e-9));
        // A biased design is not optimal.
        assert!(!g.is_saddle_point(4, 0, 1e-9));
    }

    #[test]
    fn render_contains_all_moves() {
        let s = biased_game().render();
        assert!(s.contains("q=0.5"));
        assert!(s.contains("corrupt p1"));
    }

    #[test]
    #[should_panic(expected = "one column per attacker move")]
    fn shape_is_validated() {
        let _ = Game::new(
            vec!["d".into()],
            vec!["a".into(), "b".into()],
            vec![vec![1.0]],
        );
    }
}
