//! Monte-Carlo estimation of the attacker's utility u_A(Π, A).
//!
//! The paper defines u_A(Π, A) as the expected payoff of the best simulator
//! for A in the F^⊥_sfe-ideal world under the least favorable environment
//! (Eq. 2). Our concrete analogue: a [`Scenario`] bundles a protocol, an
//! input environment and an attack strategy; [`estimate`] executes it many
//! times with seeded randomness, classifies each execution into its
//! fairness event with the protocol's canonical simulator decision function
//! (see [`crate::event`]), and averages the payoffs. The estimate comes
//! with a 95% confidence half-width so experiment assertions can be made
//! statistically honest.
//!
//! Trials are sharded across workers by `fair-simlab`'s deterministic
//! scheduler: each trial's seed is [`fair_simlab::trial_seed`]`(seed, t)`
//! — a pure function of the trial index — and shards produce integer
//! [`Tally`]s merged in schedule-independent order, so the estimate is
//! **bit-identical for every worker count** (including the sequential
//! `jobs = 1` path, which runs the same tiling code). Each individual
//! protocol execution stays single-threaded, preserving reproducible
//! adversary scheduling.

use fair_runtime::{execute, execute_traced, Adversary, ExecutionResult, Instance, Value};
use fair_trace::{ExecStats, ProtoBatch, RecordingTracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{classify, truth_from_ledger, Event, HonestCriterion};
use crate::payoff::Payoff;
use crate::stats;

/// One prepared execution: instance, attack strategy, ground truth.
pub struct Trial<M> {
    /// The protocol instance (parties with inputs baked in, hybrids).
    pub instance: Instance<M>,
    /// The attack strategy.
    pub adversary: Box<dyn Adversary<M>>,
    /// Ground-truth output for event classification. `None` means "read
    /// the ledger fact `y` after execution" (hybrid-protocol case).
    pub truth: Option<Value>,
    /// Round budget (0 = engine default).
    pub max_rounds: usize,
}

/// A repeatable experiment: protocol × environment × attack strategy.
pub trait Scenario {
    /// The protocol's wire message type.
    type Msg: Clone + core::fmt::Debug;

    /// Short name for reports.
    fn name(&self) -> String;

    /// Builds a fresh trial (drawing inputs and strategy randomness).
    fn build(&self, rng: &mut StdRng) -> Trial<Self::Msg>;

    /// Number of parties.
    fn n(&self) -> usize;

    /// The honest-output criterion for classification.
    fn criterion(&self) -> HonestCriterion {
        HonestCriterion::NonBot
    }
}

/// A partial event tally from a shard of trials — the mergeable unit the
/// parallel scheduler produces per tile.
///
/// The payoff of a trial is a function of its fairness event alone, so the
/// whole estimate (mean, variance, confidence interval) is derivable from
/// these four integers; integer merges commute exactly, which is what makes
/// parallel estimates bit-identical to sequential ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Event occurrence counts, in [`Event::ALL`] order.
    pub event_counts: [usize; 4],
}

impl Tally {
    /// Records one classified trial.
    pub fn record(&mut self, event: Event) {
        let idx = Event::ALL
            .iter()
            .position(|x| *x == event)
            .expect("event in ALL");
        self.event_counts[idx] += 1;
    }

    /// Merges another shard's counts into this one (commutative, exact).
    pub fn merge(mut self, other: Tally) -> Tally {
        for (a, b) in self.event_counts.iter_mut().zip(other.event_counts) {
            *a += b;
        }
        self
    }

    /// Total trials tallied.
    pub fn trials(&self) -> usize {
        self.event_counts.iter().sum()
    }

    /// Finalizes the tally into a [`UtilityEstimate`] under a payoff
    /// vector, with a 95% normal-approximation interval from
    /// [`crate::stats`].
    pub fn into_estimate(self, name: String, payoff: &Payoff) -> UtilityEstimate {
        let trials = self.trials();
        assert!(trials > 0, "cannot finalize an empty tally");
        let n = trials as f64;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for (idx, &count) in self.event_counts.iter().enumerate() {
            let pay = payoff.value(Event::ALL[idx]);
            sum += count as f64 * pay;
            sum_sq += count as f64 * pay * pay;
        }
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        let ci = stats::mean_interval(mean, var, trials, stats::Z_95).half_width();
        UtilityEstimate {
            name,
            mean,
            ci,
            trials,
            event_counts: self.event_counts,
        }
    }
}

/// A Monte-Carlo utility estimate.
#[derive(Clone, Debug)]
pub struct UtilityEstimate {
    /// Scenario name.
    pub name: String,
    /// Mean payoff (the utility estimate).
    pub mean: f64,
    /// 95% confidence half-width (normal approximation).
    pub ci: f64,
    /// Trials executed.
    pub trials: usize,
    /// Event frequencies, in [`Event::ALL`] order.
    pub event_counts: [usize; 4],
}

impl UtilityEstimate {
    /// Empirical probability of an event.
    pub fn event_rate(&self, e: Event) -> f64 {
        let idx = Event::ALL
            .iter()
            .position(|x| *x == e)
            .expect("event in ALL");
        self.event_counts[idx] as f64 / self.trials as f64
    }

    /// Whether the estimate is consistent with `target` (within the CI plus
    /// an absolute tolerance).
    pub fn consistent_with(&self, target: f64, tol: f64) -> bool {
        (self.mean - target).abs() <= self.ci + tol
    }

    /// Whether the estimate is (statistically) at most `bound`.
    pub fn at_most(&self, bound: f64, tol: f64) -> bool {
        self.mean <= bound + self.ci + tol
    }

    /// Whether the estimate is (statistically) at least `bound`.
    pub fn at_least(&self, bound: f64, tol: f64) -> bool {
        self.mean >= bound - self.ci - tol
    }
}

impl core::fmt::Display for UtilityEstimate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: u = {:.4} ± {:.4} ({} trials; E00/E01/E10/E11 = {}/{}/{}/{})",
            self.name,
            self.mean,
            self.ci,
            self.trials,
            self.event_counts[0],
            self.event_counts[1],
            self.event_counts[2],
            self.event_counts[3]
        )
    }
}

/// Runs one trial of a scenario and returns the raw execution result plus
/// the classified event.
pub fn run_once<S: Scenario>(
    scenario: &S,
    payoff: &Payoff,
    seed: u64,
) -> (ExecutionResult, Event, f64) {
    let (res, event, pay, _) = run_once_traced(scenario, payoff, seed);
    (res, event, pay)
}

/// [`run_once`] with observability: when trace metrics or transcript
/// capture are armed (see `fair_trace::{metrics, capture}`) the trial runs
/// through a recording tracer and returns its [`ExecStats`]; otherwise it
/// takes the plain [`execute`] path, whose only extra cost is one relaxed
/// atomic load per trial.
pub fn run_once_traced<S: Scenario>(
    scenario: &S,
    payoff: &Payoff,
    seed: u64,
) -> (ExecutionResult, Event, f64, Option<ExecStats>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trial = scenario.build(&mut rng);
    let capture = fair_trace::capture::active() && fair_trace::capture::wants(seed);
    let (res, stats) = if fair_trace::metrics::enabled() || capture {
        let ring = if capture {
            fair_trace::capture::ring_capacity()
        } else {
            0
        };
        let mut tracer = RecordingTracer::with_ring(ring);
        let res = execute_traced(
            trial.instance,
            trial.adversary.as_mut(),
            &mut rng,
            trial.max_rounds,
            &mut tracer,
        )
        .expect("scenario builds a well-formed instance");
        let stats = tracer.stats();
        if capture {
            fair_trace::capture::submit(tracer.into_transcript(seed));
        }
        (res, Some(stats))
    } else {
        let res = execute(
            trial.instance,
            trial.adversary.as_mut(),
            &mut rng,
            trial.max_rounds,
        )
        .expect("scenario builds a well-formed instance");
        (res, None)
    };
    let truth = trial.truth.unwrap_or_else(|| truth_from_ledger(&res));
    let event = classify(&res, scenario.n(), &truth, &scenario.criterion());
    let pay = payoff.value(event);
    (res, event, pay, stats)
}

/// Estimates the attacker's utility for a scenario by Monte Carlo.
///
/// Trials are sharded across the `fair-simlab` scheduler's workers; the
/// result is bit-identical for every `--jobs` value (see the module docs).
pub fn estimate<S: Scenario + Sync>(
    scenario: &S,
    payoff: &Payoff,
    trials: usize,
    seed: u64,
) -> UtilityEstimate {
    assert!(trials > 0, "need at least one trial");
    let tallies = fair_simlab::run_tiled(trials, |range| {
        let mut tally = Tally::default();
        // Per-tile protocol-metric batch, submitted once per tile (same
        // one-mutex-touch-per-tile discipline as the latency batches).
        let mut proto = fair_trace::metrics::enabled().then(ProtoBatch::default);
        // Per-trial latency observation goes through simlab's timing
        // facade: fair-core itself never reads the wall clock (rule D1).
        let mut timer = fair_simlab::BatchTimer::start(range.len());
        for t in range {
            let (_, event, _, stats) = timer.time(|| {
                run_once_traced(scenario, payoff, fair_simlab::trial_seed(seed, t as u64))
            });
            tally.record(event);
            if let (Some(batch), Some(stats)) = (proto.as_mut(), stats) {
                batch.record(&stats);
            }
        }
        timer.finish();
        if let Some(batch) = proto {
            fair_trace::metrics::record_batch(&scenario.name(), batch);
        }
        tally
    });
    let tally = tallies.into_iter().fold(Tally::default(), Tally::merge);
    tally.into_estimate(scenario.name(), payoff)
}

/// Estimates the utility of the *best* strategy among several scenarios
/// (the empirical analogue of `sup_A u_A(Π, A)` over a strategy library).
///
/// Returns the per-scenario estimates and the index of the maximizer.
pub fn best_of<S: Scenario + Sync>(
    scenarios: &[S],
    payoff: &Payoff,
    trials: usize,
    seed: u64,
) -> (Vec<UtilityEstimate>, usize) {
    assert!(!scenarios.is_empty(), "need at least one scenario");
    let estimates: Vec<UtilityEstimate> = scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| estimate(s, payoff, trials, seed.wrapping_add((i as u64) << 32)))
        .collect();
    let best = estimates
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.mean.partial_cmp(&b.1.mean).expect("finite means"))
        .map(|(i, _)| i)
        .expect("nonempty");
    (estimates, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_runtime::{Envelope, OutMsg, Party, Passive, RoundCtx};

    /// A degenerate one-party protocol that outputs its input immediately.
    #[derive(Clone, Debug)]
    struct Echo(Value, bool);

    impl Party<()> for Echo {
        fn round(&mut self, _: &RoundCtx, _: &[Envelope<()>]) -> Vec<OutMsg<()>> {
            self.1 = true;
            vec![]
        }
        fn output(&self) -> Option<Value> {
            self.1.then(|| self.0.clone())
        }
        fn clone_box(&self) -> Box<dyn Party<()>> {
            Box::new(self.clone())
        }
    }

    struct EchoScenario;

    impl Scenario for EchoScenario {
        type Msg = ();
        fn name(&self) -> String {
            "echo".into()
        }
        fn n(&self) -> usize {
            1
        }
        fn build(&self, _rng: &mut StdRng) -> Trial<()> {
            Trial {
                instance: Instance {
                    parties: vec![Box::new(Echo(Value::Scalar(3), false))],
                    funcs: vec![],
                },
                adversary: Box::new(Passive),
                truth: Some(Value::Scalar(3)),
                max_rounds: 5,
            }
        }
    }

    #[test]
    fn passive_scenario_is_always_e01() {
        let est = estimate(&EchoScenario, &Payoff::standard(), 50, 1);
        assert_eq!(est.mean, 0.0);
        assert_eq!(est.ci, 0.0);
        assert_eq!(est.event_rate(Event::E01), 1.0);
        assert!(est.consistent_with(0.0, 1e-9));
        assert!(est.at_most(0.0, 1e-9));
        assert!(est.at_least(0.0, 1e-9));
    }

    #[test]
    fn best_of_picks_the_maximum() {
        // Two copies of the same scenario — the tie is broken by max_by
        // (later element wins ties per max_by semantics); just check a
        // valid index and equal means.
        let (ests, best) = best_of(&[EchoScenario, EchoScenario], &Payoff::standard(), 10, 2);
        assert_eq!(ests.len(), 2);
        assert!(best < 2);
        assert_eq!(ests[0].mean, ests[1].mean);
    }

    #[test]
    fn display_contains_counts() {
        let est = estimate(&EchoScenario, &Payoff::standard(), 4, 3);
        let s = est.to_string();
        assert!(s.contains("echo"));
        assert!(s.contains("0/4/0/0"));
    }
}
