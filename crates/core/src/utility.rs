//! Monte-Carlo estimation of the attacker's utility u_A(Π, A).
//!
//! The paper defines u_A(Π, A) as the expected payoff of the best simulator
//! for A in the F^⊥_sfe-ideal world under the least favorable environment
//! (Eq. 2). Our concrete analogue: a [`Scenario`] bundles a protocol, an
//! input environment and an attack strategy; [`estimate`] executes it many
//! times with seeded randomness, classifies each execution into its
//! fairness event with the protocol's canonical simulator decision function
//! (see [`crate::event`]), and averages the payoffs. The estimate comes
//! with a 95% confidence half-width so experiment assertions can be made
//! statistically honest.
//!
//! Trials are sharded across workers by `fair-simlab`'s deterministic
//! scheduler: each trial's seed is [`fair_simlab::trial_seed`]`(seed, t)`
//! — a pure function of the trial index — and shards produce integer
//! [`Tally`]s merged in schedule-independent order, so the estimate is
//! **bit-identical for every worker count** (including the sequential
//! `jobs = 1` path, which runs the same tiling code). Each individual
//! protocol execution stays single-threaded, preserving reproducible
//! adversary scheduling.

use fair_runtime::{execute, execute_traced, Adversary, ExecutionResult, Instance, Value};
use fair_trace::{ExecStats, ProtoBatch, RecordingTracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{classify, truth_from_ledger, Event, HonestCriterion};
use crate::payoff::Payoff;
use crate::stats;

/// One prepared execution: instance, attack strategy, ground truth.
pub struct Trial<M> {
    /// The protocol instance (parties with inputs baked in, hybrids).
    pub instance: Instance<M>,
    /// The attack strategy.
    pub adversary: Box<dyn Adversary<M>>,
    /// Ground-truth output for event classification. `None` means "read
    /// the ledger fact `y` after execution" (hybrid-protocol case).
    pub truth: Option<Value>,
    /// Round budget (0 = engine default).
    pub max_rounds: usize,
}

/// A repeatable experiment: protocol × environment × attack strategy.
pub trait Scenario {
    /// The protocol's wire message type.
    type Msg: Clone + core::fmt::Debug;

    /// Short name for reports.
    fn name(&self) -> String;

    /// Builds a fresh trial (drawing inputs and strategy randomness).
    fn build(&self, rng: &mut StdRng) -> Trial<Self::Msg>;

    /// Number of parties.
    fn n(&self) -> usize;

    /// The honest-output criterion for classification.
    fn criterion(&self) -> HonestCriterion {
        HonestCriterion::NonBot
    }
}

/// A partial event tally from a shard of trials — the mergeable unit the
/// parallel scheduler produces per tile.
///
/// The payoff of a trial is a function of its fairness event alone, so the
/// whole estimate (mean, variance, confidence interval) is derivable from
/// these four integers; integer merges commute exactly, which is what makes
/// parallel estimates bit-identical to sequential ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Event occurrence counts, in [`Event::ALL`] order.
    pub event_counts: [usize; 4],
}

impl Tally {
    /// Records one classified trial.
    pub fn record(&mut self, event: Event) {
        let idx = Event::ALL
            .iter()
            .position(|x| *x == event)
            .expect("event in ALL");
        self.event_counts[idx] += 1;
    }

    /// Merges another shard's counts into this one (commutative, exact).
    pub fn merge(mut self, other: Tally) -> Tally {
        for (a, b) in self.event_counts.iter_mut().zip(other.event_counts) {
            *a += b;
        }
        self
    }

    /// Total trials tallied.
    pub fn trials(&self) -> usize {
        self.event_counts.iter().sum()
    }

    /// Finalizes the tally into a [`UtilityEstimate`] under a payoff
    /// vector, with a 95% normal-approximation interval from
    /// [`crate::stats`].
    pub fn into_estimate(self, name: String, payoff: &Payoff) -> UtilityEstimate {
        let trials = self.trials();
        assert!(trials > 0, "cannot finalize an empty tally");
        let n = trials as f64;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for (idx, &count) in self.event_counts.iter().enumerate() {
            let pay = payoff.value(Event::ALL[idx]);
            sum += count as f64 * pay;
            sum_sq += count as f64 * pay * pay;
        }
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        let ci = stats::mean_interval(mean, var, trials, stats::Z_95).half_width();
        UtilityEstimate {
            name,
            mean,
            ci,
            trials,
            event_counts: self.event_counts,
        }
    }
}

/// A Monte-Carlo utility estimate.
#[derive(Clone, Debug)]
pub struct UtilityEstimate {
    /// Scenario name.
    pub name: String,
    /// Mean payoff (the utility estimate).
    pub mean: f64,
    /// 95% confidence half-width (normal approximation).
    pub ci: f64,
    /// Trials executed.
    pub trials: usize,
    /// Event frequencies, in [`Event::ALL`] order.
    pub event_counts: [usize; 4],
}

impl UtilityEstimate {
    /// Empirical probability of an event.
    pub fn event_rate(&self, e: Event) -> f64 {
        let idx = Event::ALL
            .iter()
            .position(|x| *x == e)
            .expect("event in ALL");
        self.event_counts[idx] as f64 / self.trials as f64
    }

    /// Whether the estimate is consistent with `target` (within the CI plus
    /// an absolute tolerance).
    pub fn consistent_with(&self, target: f64, tol: f64) -> bool {
        (self.mean - target).abs() <= self.ci + tol
    }

    /// Whether the estimate is (statistically) at most `bound`.
    pub fn at_most(&self, bound: f64, tol: f64) -> bool {
        self.mean <= bound + self.ci + tol
    }

    /// Whether the estimate is (statistically) at least `bound`.
    pub fn at_least(&self, bound: f64, tol: f64) -> bool {
        self.mean >= bound - self.ci - tol
    }
}

impl core::fmt::Display for UtilityEstimate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: u = {:.4} ± {:.4} ({} trials; E00/E01/E10/E11 = {}/{}/{}/{})",
            self.name,
            self.mean,
            self.ci,
            self.trials,
            self.event_counts[0],
            self.event_counts[1],
            self.event_counts[2],
            self.event_counts[3]
        )
    }
}

/// Runs one trial of a scenario and returns the raw execution result plus
/// the classified event.
pub fn run_once<S: Scenario>(
    scenario: &S,
    payoff: &Payoff,
    seed: u64,
) -> (ExecutionResult, Event, f64) {
    let (res, event, pay, _) = run_once_traced(scenario, payoff, seed);
    (res, event, pay)
}

/// [`run_once`] with observability: when trace metrics or transcript
/// capture are armed (see `fair_trace::{metrics, capture}`) the trial runs
/// through a recording tracer and returns its [`ExecStats`]; otherwise it
/// takes the plain [`execute`] path, whose only extra cost is one relaxed
/// atomic load per trial.
pub fn run_once_traced<S: Scenario>(
    scenario: &S,
    payoff: &Payoff,
    seed: u64,
) -> (ExecutionResult, Event, f64, Option<ExecStats>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trial = scenario.build(&mut rng);
    let capture = fair_trace::capture::active() && fair_trace::capture::wants(seed);
    let (res, stats) = if fair_trace::metrics::enabled() || capture {
        let ring = if capture {
            fair_trace::capture::ring_capacity()
        } else {
            0
        };
        let mut tracer = RecordingTracer::with_ring(ring);
        let res = execute_traced(
            trial.instance,
            trial.adversary.as_mut(),
            &mut rng,
            trial.max_rounds,
            &mut tracer,
        )
        .expect("scenario builds a well-formed instance");
        let stats = tracer.stats();
        if capture {
            fair_trace::capture::submit(tracer.into_transcript(seed));
        }
        (res, Some(stats))
    } else {
        let res = execute(
            trial.instance,
            trial.adversary.as_mut(),
            &mut rng,
            trial.max_rounds,
        )
        .expect("scenario builds a well-formed instance");
        (res, None)
    };
    let truth = trial.truth.unwrap_or_else(|| truth_from_ledger(&res));
    let event = classify(&res, scenario.n(), &truth, &scenario.criterion());
    let pay = payoff.value(event);
    (res, event, pay, stats)
}

/// Tiles per adaptive batch: the stopper re-checks the confidence interval
/// every `4 × TILE = 256` trials.
const ADAPTIVE_CHUNK_TILES: usize = 4;

/// Floor below which the adaptive stopper may not trigger — the normal
/// approximation behind the interval is meaningless on a handful of trials.
const ADAPTIVE_MIN_TRIALS: usize = 2 * fair_simlab::TILE;

/// Estimates the attacker's utility for a scenario by Monte Carlo.
///
/// Trials are sharded across the `fair-simlab` scheduler's workers; the
/// result is bit-identical for every `--jobs` value (see the module docs).
///
/// Two ambient contexts refine the execution without changing the result
/// for a full-budget run:
///
/// - when a tile store is live ([`fair_tiles::cache`] — a store installed
///   *and* an `(exp, seed)` group entered), full 64-trial tiles are looked
///   up before computing and recorded after, so repeat estimations only
///   pay for tiles they have never seen; merged results stay byte-identical
///   to a fresh run because the cache stores the same integer tallies the
///   fresh run would fold;
/// - when a progressive context is armed ([`crate::progressive::scoped`]),
///   tiles run in chunks and the call stops early once the 95% half-width
///   reaches the armed epsilon, emitting a progress frame per chunk.
pub fn estimate<S: Scenario + Sync>(
    scenario: &S,
    payoff: &Payoff,
    trials: usize,
    seed: u64,
) -> UtilityEstimate {
    assert!(trials > 0, "need at least one trial");
    let name = scenario.name();
    let total_tiles = trials.div_ceil(fair_simlab::TILE);
    if let Some(epsilon) = crate::progressive::epsilon() {
        return estimate_adaptive(scenario, payoff, trials, seed, &name, epsilon);
    }
    let tally = tally_tile_span(scenario, payoff, &name, seed, 0..total_tiles, trials);
    tally.into_estimate(name, payoff)
}

/// The chunked, CI-bounded estimation path (armed via
/// [`crate::progressive`]). The stop rule is a pure function of the
/// integer tallies, so adaptive results are worker-count independent too.
fn estimate_adaptive<S: Scenario + Sync>(
    scenario: &S,
    payoff: &Payoff,
    trials: usize,
    seed: u64,
    name: &str,
    epsilon: f64,
) -> UtilityEstimate {
    let total_tiles = trials.div_ceil(fair_simlab::TILE);
    let mut tally = Tally::default();
    let mut next = 0usize;
    loop {
        let hi = (next + ADAPTIVE_CHUNK_TILES).min(total_tiles);
        tally = tally.merge(tally_tile_span(
            scenario,
            payoff,
            name,
            seed,
            next..hi,
            trials,
        ));
        next = hi;
        let est = tally.into_estimate(name.to_string(), payoff);
        let exhausted = next >= total_tiles;
        let converged = est.trials >= ADAPTIVE_MIN_TRIALS && est.ci <= epsilon;
        let done = exhausted || converged;
        crate::progressive::emit(crate::progressive::Update {
            scenario: name.to_string(),
            requested: trials,
            trials: est.trials,
            mean: est.mean,
            ci: est.ci,
            done,
        });
        if done {
            crate::progressive::note(trials, est.trials, est.trials < trials);
            return est;
        }
    }
}

/// Computes the merged tally of the tile span `tiles` of the fixed tiling
/// of `[0, total)`: cached full tiles are resolved on the calling thread,
/// only the missing ones are fanned out to scheduler workers, and freshly
/// computed full tiles are recorded back. Partial tail tiles are never
/// cached — their geometry depends on `total`.
fn tally_tile_span<S: Scenario + Sync>(
    scenario: &S,
    payoff: &Payoff,
    name: &str,
    seed: u64,
    tiles: core::ops::Range<usize>,
    total: usize,
) -> Tally {
    const TILE: usize = fair_simlab::TILE;
    let tile_range = |i: usize| i * TILE..((i + 1) * TILE).min(total);
    let full = |i: usize| (i + 1) * TILE <= total;
    // Transcript capture must observe every trial, so it bypasses the
    // cache entirely (and records nothing, keeping stored tallies pure).
    let cacheable = fair_tiles::cache::active() && !fair_trace::capture::active();
    let mut slots: Vec<Option<Tally>> = tiles
        .clone()
        .map(|i| {
            (cacheable && full(i))
                .then(|| fair_tiles::cache::lookup(name, seed, i as u32))
                .flatten()
                .and_then(tally_from_cached)
        })
        .collect();
    let missing: Vec<usize> = tiles
        .clone()
        .zip(slots.iter())
        .filter(|(_, slot)| slot.is_none())
        .map(|(i, _)| i)
        .collect();
    let computed = fair_simlab::run_indexed(missing.len(), |k| {
        compute_tile(scenario, payoff, name, seed, tile_range(missing[k]))
    });
    for (k, tally) in computed.into_iter().enumerate() {
        let i = missing[k];
        if cacheable && full(i) {
            fair_tiles::cache::record(name, seed, i as u32, tally_to_cached(&tally));
        }
        slots[i - tiles.start] = Some(tally);
    }
    slots
        .into_iter()
        .flatten()
        .fold(Tally::default(), Tally::merge)
}

/// Executes one tile of trials (the scheduler work unit).
fn compute_tile<S: Scenario + Sync>(
    scenario: &S,
    payoff: &Payoff,
    name: &str,
    seed: u64,
    range: core::ops::Range<usize>,
) -> Tally {
    let mut tally = Tally::default();
    // Per-tile protocol-metric batch, submitted once per tile (same
    // one-mutex-touch-per-tile discipline as the latency batches).
    let mut proto = fair_trace::metrics::enabled().then(ProtoBatch::default);
    // Per-trial latency observation goes through simlab's timing
    // facade: fair-core itself never reads the wall clock (rule D1).
    let mut timer = fair_simlab::BatchTimer::start(range.len());
    for t in range {
        let (_, event, _, stats) = timer
            .time(|| run_once_traced(scenario, payoff, fair_simlab::trial_seed(seed, t as u64)));
        tally.record(event);
        if let (Some(batch), Some(stats)) = (proto.as_mut(), stats) {
            batch.record(&stats);
        }
    }
    timer.finish();
    if let Some(batch) = proto {
        fair_trace::metrics::record_batch(name, batch);
    }
    tally
}

/// Validates a cached tile before trusting it: exactly one full tile of
/// consistent counts. Anything else is treated as a miss.
fn tally_from_cached(cached: fair_tiles::TileTally) -> Option<Tally> {
    if cached.trials as usize != fair_simlab::TILE {
        return None;
    }
    let mut event_counts = [0usize; 4];
    for (dst, src) in event_counts.iter_mut().zip(cached.counts) {
        *dst = usize::try_from(src).ok()?;
    }
    let tally = Tally { event_counts };
    (tally.trials() == fair_simlab::TILE).then_some(tally)
}

fn tally_to_cached(tally: &Tally) -> fair_tiles::TileTally {
    let mut counts = [0u64; 4];
    for (dst, src) in counts.iter_mut().zip(tally.event_counts) {
        *dst = src as u64;
    }
    fair_tiles::TileTally {
        trials: tally.trials() as u32,
        counts,
    }
}

/// Estimates the utility of the *best* strategy among several scenarios
/// (the empirical analogue of `sup_A u_A(Π, A)` over a strategy library).
///
/// Returns the per-scenario estimates and the index of the maximizer.
pub fn best_of<S: Scenario + Sync>(
    scenarios: &[S],
    payoff: &Payoff,
    trials: usize,
    seed: u64,
) -> (Vec<UtilityEstimate>, usize) {
    assert!(!scenarios.is_empty(), "need at least one scenario");
    let estimates: Vec<UtilityEstimate> = scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| estimate(s, payoff, trials, seed.wrapping_add((i as u64) << 32)))
        .collect();
    let best = estimates
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.mean.partial_cmp(&b.1.mean).expect("finite means"))
        .map(|(i, _)| i)
        .expect("nonempty");
    (estimates, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_runtime::{Envelope, OutMsg, Party, Passive, RoundCtx};

    /// A degenerate one-party protocol that outputs its input immediately.
    #[derive(Clone, Debug)]
    struct Echo(Value, bool);

    impl Party<()> for Echo {
        fn round(&mut self, _: &RoundCtx, _: &[Envelope<()>]) -> Vec<OutMsg<()>> {
            self.1 = true;
            vec![]
        }
        fn output(&self) -> Option<Value> {
            self.1.then(|| self.0.clone())
        }
        fn clone_box(&self) -> Box<dyn Party<()>> {
            Box::new(self.clone())
        }
    }

    struct EchoScenario;

    impl Scenario for EchoScenario {
        type Msg = ();
        fn name(&self) -> String {
            "echo".into()
        }
        fn n(&self) -> usize {
            1
        }
        fn build(&self, _rng: &mut StdRng) -> Trial<()> {
            Trial {
                instance: Instance {
                    parties: vec![Box::new(Echo(Value::Scalar(3), false))],
                    funcs: vec![],
                },
                adversary: Box::new(Passive),
                truth: Some(Value::Scalar(3)),
                max_rounds: 5,
            }
        }
    }

    #[test]
    fn passive_scenario_is_always_e01() {
        let est = estimate(&EchoScenario, &Payoff::standard(), 50, 1);
        assert_eq!(est.mean, 0.0);
        assert_eq!(est.ci, 0.0);
        assert_eq!(est.event_rate(Event::E01), 1.0);
        assert!(est.consistent_with(0.0, 1e-9));
        assert!(est.at_most(0.0, 1e-9));
        assert!(est.at_least(0.0, 1e-9));
    }

    #[test]
    fn best_of_picks_the_maximum() {
        // Two copies of the same scenario — the tie is broken by max_by
        // (later element wins ties per max_by semantics); just check a
        // valid index and equal means.
        let (ests, best) = best_of(&[EchoScenario, EchoScenario], &Payoff::standard(), 10, 2);
        assert_eq!(ests.len(), 2);
        assert!(best < 2);
        assert_eq!(ests[0].mean, ests[1].mean);
    }

    #[test]
    fn display_contains_counts() {
        let est = estimate(&EchoScenario, &Payoff::standard(), 4, 3);
        let s = est.to_string();
        assert!(s.contains("echo"));
        assert!(s.contains("0/4/0/0"));
    }

    /// Serializes the tests that install the process-global tile store.
    static CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn tile_cache_hits_reproduce_fresh_results() {
        let _slot = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let fresh_640 = estimate(&EchoScenario, &Payoff::standard(), 640, 11);
        let fresh_2000 = estimate(&EchoScenario, &Payoff::standard(), 2000, 11);
        fair_tiles::cache::install(std::sync::Arc::new(fair_tiles::Store::in_memory()));
        let (warm_640, warm_2000) = fair_tiles::cache::with_group("unit", 11, || {
            (
                estimate(&EchoScenario, &Payoff::standard(), 640, 11),
                estimate(&EchoScenario, &Payoff::standard(), 2000, 11),
            )
        });
        let stats = fair_tiles::cache::snapshot().expect("store installed");
        fair_tiles::cache::uninstall();
        // 640 trials = tiles 0..10 (all full, all cold): 10 misses.
        // 2000 trials = tiles 0..32 (tile 31 partial): 10 prefix hits,
        // 21 full misses, the partial tile never consulted.
        assert_eq!((stats.hits, stats.misses, stats.inserts), (10, 31, 31));
        for (warm, fresh) in [(&warm_640, &fresh_640), (&warm_2000, &fresh_2000)] {
            assert_eq!(warm.event_counts, fresh.event_counts);
            assert_eq!(warm.trials, fresh.trials);
            assert_eq!(warm.mean.to_bits(), fresh.mean.to_bits());
            assert_eq!(warm.ci.to_bits(), fresh.ci.to_bits());
        }
    }

    #[test]
    fn cache_is_inert_without_a_group() {
        let _slot = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        fair_tiles::cache::install(std::sync::Arc::new(fair_tiles::Store::in_memory()));
        let _ = estimate(&EchoScenario, &Payoff::standard(), 128, 5);
        let stats = fair_tiles::cache::snapshot().expect("store installed");
        fair_tiles::cache::uninstall();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (0, 0, 0));
    }

    #[test]
    fn adaptive_stopper_converges_early_and_stays_exact() {
        // Zero-variance scenario: the half-width is 0 after the first
        // chunk, so a 1000-trial request stops at 256 trials.
        let (tx, rx) = std::sync::mpsc::channel();
        let (est, summary) = crate::progressive::scoped(0.05, Some(tx), || {
            estimate(&EchoScenario, &Payoff::standard(), 1000, 13)
        });
        assert_eq!(est.trials, ADAPTIVE_CHUNK_TILES * fair_simlab::TILE);
        assert_eq!(est.event_rate(Event::E01), 1.0);
        assert_eq!(summary.estimates, 1);
        assert_eq!(summary.early_stops, 1);
        assert_eq!(summary.trials_requested, 1000);
        assert_eq!(summary.trials_used, 256);
        let frames: Vec<_> = rx.try_iter().collect();
        assert_eq!(frames.len(), 1);
        assert!(frames[0].done);
        assert_eq!(frames[0].trials, 256);
        assert_eq!(frames[0].requested, 1000);
    }

    #[test]
    fn adaptive_exhaustion_matches_fixed_budget_bit_for_bit() {
        // An unreachable epsilon forces the adaptive path to spend the
        // whole budget; the result must equal the plain path exactly.
        let fixed = estimate(&EchoScenario, &Payoff::standard(), 500, 17);
        let (adaptive, summary) = crate::progressive::scoped(-1.0, None, || {
            estimate(&EchoScenario, &Payoff::standard(), 500, 17)
        });
        assert_eq!(adaptive.event_counts, fixed.event_counts);
        assert_eq!(adaptive.mean.to_bits(), fixed.mean.to_bits());
        assert_eq!(adaptive.ci.to_bits(), fixed.ci.to_bits());
        assert_eq!(summary.trials_used, 500);
        assert_eq!(summary.early_stops, 0);
    }
}
