//! Statistical invariants of the utility estimator.

use fair_core::{estimate, Event, Payoff, Scenario, Trial};
use fair_runtime::{Envelope, Instance, OutMsg, Party, Passive, RoundCtx, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

/// A protocol whose outcome is a coin flip between "honest get output"
/// (E01) and "nobody does" (E00) — enough structure to stress the
/// estimator's accounting.
#[derive(Clone, Debug)]
struct CoinOutcome {
    deliver: bool,
    done: Option<Value>,
}

impl Party<()> for CoinOutcome {
    fn round(&mut self, _: &RoundCtx, _: &[Envelope<()>]) -> Vec<OutMsg<()>> {
        self.done = Some(if self.deliver {
            Value::Scalar(1)
        } else {
            Value::Bot
        });
        vec![]
    }
    fn output(&self) -> Option<Value> {
        self.done.clone()
    }
    fn clone_box(&self) -> Box<dyn Party<()>> {
        Box::new(self.clone())
    }
}

struct CoinScenario {
    p_deliver: f64,
}

impl Scenario for CoinScenario {
    type Msg = ();
    fn name(&self) -> String {
        "coin-outcome".into()
    }
    fn n(&self) -> usize {
        1
    }
    fn build(&self, rng: &mut StdRng) -> Trial<()> {
        let deliver = rng.random_bool(self.p_deliver);
        Trial {
            instance: Instance {
                parties: vec![Box::new(CoinOutcome {
                    deliver,
                    done: None,
                })],
                funcs: vec![],
            },
            adversary: Box::new(Passive),
            truth: Some(Value::Scalar(1)),
            max_rounds: 4,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mean_is_bounded_by_payoff_range(p in 0.0f64..=1.0, seed: u64) {
        let payoff = Payoff::standard();
        let est = estimate(&CoinScenario { p_deliver: p }, &payoff, 200, seed);
        let lo = payoff.g00.min(payoff.g01).min(payoff.g10).min(payoff.g11);
        let hi = payoff.g00.max(payoff.g01).max(payoff.g10).max(payoff.g11);
        prop_assert!(est.mean >= lo && est.mean <= hi);
        prop_assert!(est.ci >= 0.0);
    }

    #[test]
    fn event_counts_sum_to_trials(p in 0.0f64..=1.0, seed: u64, trials in 1usize..300) {
        let est = estimate(&CoinScenario { p_deliver: p }, &Payoff::standard(), trials, seed);
        prop_assert_eq!(est.event_counts.iter().sum::<usize>(), trials);
    }

    #[test]
    fn estimates_are_reproducible(seed: u64) {
        let payoff = Payoff::standard();
        let a = estimate(&CoinScenario { p_deliver: 0.5 }, &payoff, 100, seed);
        let b = estimate(&CoinScenario { p_deliver: 0.5 }, &payoff, 100, seed);
        prop_assert_eq!(a.mean, b.mean);
        prop_assert_eq!(a.event_counts, b.event_counts);
    }
}

#[test]
fn estimator_tracks_the_true_mixture() {
    // Pr[E01] = 0.7 and Pr[E00] = 0.3 under γ = standard: expected payoff
    // 0.7·γ01 + 0.3·γ00 = 0.075.
    let payoff = Payoff::standard();
    let est = estimate(&CoinScenario { p_deliver: 0.7 }, &payoff, 20_000, 9);
    assert!(
        (est.mean - 0.3 * payoff.g00).abs() < 0.01,
        "mean = {}",
        est.mean
    );
    assert!((est.event_rate(Event::E01) - 0.7).abs() < 0.02);
    assert!((est.event_rate(Event::E00) - 0.3).abs() < 0.02);
    assert_eq!(est.event_rate(Event::E10), 0.0);
}
