//! Raw Linux syscall shims — the one `unsafe` module in the workspace.
//!
//! Readiness polling cannot be expressed in safe std Rust (there is no
//! epoll in the standard library), and the build is offline, so no FFI
//! bindings are available either. The same constraint hits listener setup:
//! `SO_REUSEPORT` must be set between `socket()` and `bind()`, a window std
//! never exposes. The shims below invoke the syscalls we need via inline
//! assembly and immediately convert results into safe owned types; every
//! `unsafe` block is confined to this file and carries
//! its safety argument inline. Callers only ever see `io::Result`.

use std::io;
use std::os::fd::{AsRawFd, BorrowedFd, FromRawFd, OwnedFd, RawFd};

// Syscall numbers differ per architecture; both 64-bit Linux ABIs the
// workspace targets are covered. `epoll_pwait` (not `epoll_wait`) is used
// because aarch64 never had the non-p variant — with a null sigmask the two
// are equivalent, so one code path serves both arches.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const SOCKET: usize = 41;
    pub const BIND: usize = 49;
    pub const LISTEN: usize = 50;
    pub const SETSOCKOPT: usize = 54;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const SOCKET: usize = 198;
    pub const BIND: usize = 200;
    pub const LISTEN: usize = 201;
    pub const SETSOCKOPT: usize = 208;
}

/// `epoll_ctl` op: add a new descriptor.
pub const EPOLL_CTL_ADD: usize = 1;
/// `epoll_ctl` op: remove a descriptor.
pub const EPOLL_CTL_DEL: usize = 2;
/// `epoll_ctl` op: change an existing registration.
pub const EPOLL_CTL_MOD: usize = 3;

/// Readiness bit: readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness bit: writable.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness bit: error condition.
pub const EPOLLERR: u32 = 0x008;
/// Readiness bit: hangup.
pub const EPOLLHUP: u32 = 0x010;
/// Readiness bit: peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Registration flag: edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;
const EFD_CLOEXEC: usize = 0x80000;

const AF_INET: usize = 2;
const AF_INET6: usize = 10;
const SOCK_STREAM: usize = 1;
const SOCK_CLOEXEC: usize = 0x80000;
const SOL_SOCKET: usize = 1;
const SO_REUSEADDR: usize = 2;
const SO_REUSEPORT: usize = 15;

/// The kernel's epoll event record. On x86_64 the ABI packs it (no padding
/// between the 32-bit mask and the 64-bit payload); other arches use
/// natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness/registration bit mask (`EPOLL*` constants).
    pub events: u32,
    /// Caller-owned payload, echoed back verbatim on readiness.
    pub data: u64,
}

/// Invokes a six-argument syscall and returns the raw kernel result
/// (negative errno on failure).
///
/// # Safety
/// The caller must pass a valid syscall number and arguments that satisfy
/// that syscall's contract (e.g. pointers must be valid for the kernel to
/// read/write for the duration of the call).
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    // SAFETY: delegated to the caller — this block only encodes the Linux
    // x86_64 syscall ABI (args in rdi/rsi/rdx/r10/r8/r9, number in rax,
    // rcx/r11 clobbered by the `syscall` instruction).
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// See the x86_64 variant; same contract, aarch64 ABI.
///
/// # Safety
/// As for the x86_64 variant.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    // SAFETY: delegated to the caller — this block only encodes the Linux
    // aarch64 syscall ABI (args in x0..x5, number in x8).
    unsafe {
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            in("x8") nr,
            options(nostack),
        );
    }
    ret
}

/// Converts a raw kernel return value into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<OwnedFd> {
    // SAFETY: epoll_create1 takes one flag argument and reads no memory.
    let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
    // SAFETY: on success the kernel returned a fresh descriptor that
    // nothing else owns, so wrapping it in OwnedFd is sound.
    Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
}

/// Adds, modifies, or removes (`EPOLL_CTL_*`) a descriptor's registration.
pub fn epoll_ctl(ep: BorrowedFd<'_>, op: usize, fd: RawFd, event: EpollEvent) -> io::Result<()> {
    let ptr = &event as *const EpollEvent as usize;
    // SAFETY: `event` is a live stack value for the duration of the call
    // and both descriptors are valid (BorrowedFd guarantees ep; fd comes
    // from a live socket owned by the caller). The kernel only reads the
    // event record.
    check(unsafe {
        syscall6(
            nr::EPOLL_CTL,
            ep.as_raw_fd() as usize,
            op,
            fd as usize,
            ptr,
            0,
            0,
        )
    })?;
    Ok(())
}

/// Waits for readiness, filling `events`; returns how many fired.
/// `timeout_ms` follows epoll convention: `-1` blocks indefinitely.
pub fn epoll_wait(
    ep: BorrowedFd<'_>,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    // SAFETY: `events` is a live, exclusively borrowed slice; its pointer
    // and length describe exactly the memory the kernel may write. The
    // sigmask argument is null (no signal-mask swap), making epoll_pwait
    // behave as plain epoll_wait.
    check(unsafe {
        syscall6(
            nr::EPOLL_PWAIT,
            ep.as_raw_fd() as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize,
            0,
            8,
        )
    })
}

/// Creates a nonblocking, close-on-exec eventfd with counter zero.
pub fn eventfd() -> io::Result<OwnedFd> {
    // SAFETY: eventfd2 takes an initial counter and flags; no memory.
    let fd = check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
    // SAFETY: fresh descriptor owned by no one else, as in epoll_create.
    Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
}

/// Creates a close-on-exec TCP stream socket for the address family of
/// `ipv6`. Needed because std offers no hook to set socket options between
/// `socket()` and `bind()` — which is exactly where `SO_REUSEPORT` must go.
pub fn tcp_socket(ipv6: bool) -> io::Result<OwnedFd> {
    let domain = if ipv6 { AF_INET6 } else { AF_INET };
    // SAFETY: socket(2) takes three scalar arguments and reads no memory.
    let fd =
        check(unsafe { syscall6(nr::SOCKET, domain, SOCK_STREAM | SOCK_CLOEXEC, 0, 0, 0, 0) })?;
    // SAFETY: fresh descriptor owned by no one else, as in epoll_create.
    Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
}

/// Enables `SO_REUSEADDR` + `SO_REUSEPORT` on a not-yet-bound socket, so N
/// listeners can bind the same address and the kernel shards accepted
/// connections across them by flow hash.
pub fn set_reuse_port(fd: BorrowedFd<'_>) -> io::Result<()> {
    for opt in [SO_REUSEADDR, SO_REUSEPORT] {
        let one: u32 = 1;
        let ptr = &one as *const u32 as usize;
        // SAFETY: `one` is a live stack value for the duration of the call;
        // the kernel reads exactly `optlen` (4) bytes from it.
        check(unsafe {
            syscall6(
                nr::SETSOCKOPT,
                fd.as_raw_fd() as usize,
                SOL_SOCKET,
                opt,
                ptr,
                4,
                0,
            )
        })?;
    }
    Ok(())
}

/// Binds a socket to `addr` (v4 `sockaddr_in` / v6 `sockaddr_in6` encoded
/// by hand — no libc in this workspace).
pub fn bind(fd: BorrowedFd<'_>, addr: &std::net::SocketAddr) -> io::Result<()> {
    // `sockaddr_in` is 16 bytes, `sockaddr_in6` 28; one buffer covers both.
    let mut buf = [0u8; 28];
    let len: usize = match addr {
        std::net::SocketAddr::V4(v4) => {
            buf[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&v4.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v4.ip().octets());
            16
        }
        std::net::SocketAddr::V6(v6) => {
            buf[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&v6.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
            buf[8..24].copy_from_slice(&v6.ip().octets());
            buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            28
        }
    };
    // SAFETY: `buf` is a live stack array and `len` never exceeds its size;
    // the kernel only reads the sockaddr.
    check(unsafe {
        syscall6(
            nr::BIND,
            fd.as_raw_fd() as usize,
            buf.as_ptr() as usize,
            len,
            0,
            0,
            0,
        )
    })?;
    Ok(())
}

/// Marks a bound socket as a passive listener with the given backlog.
pub fn listen(fd: BorrowedFd<'_>, backlog: usize) -> io::Result<()> {
    // SAFETY: listen(2) takes two scalar arguments and reads no memory.
    check(unsafe { syscall6(nr::LISTEN, fd.as_raw_fd() as usize, backlog, 0, 0, 0, 0) })?;
    Ok(())
}
