//! `fair-aio` — a zero-dependency readiness-polling event loop core.
//!
//! The serving layer needs three primitives to run many connections on one
//! thread: an OS readiness poller, a cross-thread waker, and a coarse timer.
//! This crate provides exactly those, and nothing else:
//!
//! * [`Poller`] — a thin epoll wrapper (level- or edge-triggered) speaking
//!   `std::os::fd` borrowed/owned descriptors.
//! * [`Waker`] — an `eventfd`-backed doorbell so worker threads can nudge a
//!   loop blocked in [`Poller::wait`].
//! * [`TimerWheel`] — a hashed wheel of coarse deadlines (connection
//!   idle/read timeouts), advanced lazily from the loop.
//! * [`net::reuseport_listener`] — a `SO_REUSEPORT` TCP listener, so N
//!   event loops can each own a listener on the same address and the kernel
//!   shards accepted connections across them.
//!
//! The crate is FFI-free: the syscalls it needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_pwait`, `eventfd2`, and the `socket`/`setsockopt`/
//! `bind`/`listen` quartet behind reuseport listeners) are invoked through
//! inline-asm shims in the private `sys` module — the only module in the
//! workspace allowed to contain `unsafe` (fairlint rule R2 carries the
//! exemption). Everything the shims return is immediately wrapped in owned
//! descriptors (`OwnedFd`, `File`, `TcpListener`), so resource cleanup is
//! ordinary RAII.
//!
//! Like the rest of the serve stack, the API is total: nothing here panics
//! on adversarial input — errors surface as `io::Result`.

#[allow(unsafe_code)]
mod sys;

pub mod net;
mod poll;
mod wake;
mod wheel;

pub use poll::{Event, Interest, Poller, Token};
pub use wake::Waker;
pub use wheel::TimerWheel;
