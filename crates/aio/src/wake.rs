//! Cross-thread doorbell for a loop parked in `Poller::wait`.

use std::fs::File;
use std::io::{Read, Write};
use std::os::fd::{AsFd, BorrowedFd};
use std::sync::Arc;

use crate::sys;

/// An `eventfd`-backed waker.
///
/// Register [`Waker::as_fd`] with the poller (edge-triggered read interest
/// is the natural choice); any thread holding a clone can then
/// [`wake`](Waker::wake) the loop out of its wait. Wakes coalesce: N wakes
/// before the loop runs deliver one readiness event, and
/// [`drain`](Waker::drain) resets the counter so the next wake fires again.
///
/// The descriptor is wrapped in a `File`, so signalling and draining are
/// plain safe `read`/`write` calls.
#[derive(Clone)]
pub struct Waker {
    file: Arc<File>,
}

impl Waker {
    /// Creates a new waker (nonblocking eventfd, counter zero).
    pub fn new() -> std::io::Result<Waker> {
        Ok(Waker {
            file: Arc::new(File::from(sys::eventfd()?)),
        })
    }

    /// Signals the loop. Never blocks; a full counter (which already means
    /// "wake pending") is deliberately ignored.
    pub fn wake(&self) {
        let _ = (&*self.file).write(&1u64.to_ne_bytes());
    }

    /// Clears pending wake signals so the next [`wake`](Waker::wake) edge
    /// fires anew. Call this from the loop when the waker's token shows up.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // A nonblocking eventfd read returns the whole counter and resets
        // it; the follow-up read returns WouldBlock and ends the loop.
        while let Ok(n) = (&*self.file).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

impl AsFd for Waker {
    fn as_fd(&self) -> BorrowedFd<'_> {
        self.file.as_fd()
    }
}
