//! Safe readiness poller over the `sys` epoll shims.

use std::io;
use std::os::fd::{AsFd, AsRawFd, BorrowedFd, OwnedFd};
use std::time::Duration;

use crate::sys::{self, EpollEvent};

/// Opaque registration key echoed back on every readiness event.
///
/// The loop encodes whatever it likes in the 64 bits (slab index plus a
/// generation counter is the usual scheme, so stale events for a recycled
/// slot can be detected and dropped).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// What a registration wants to hear about, and how.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    /// Deliver read-readiness (and peer half-close).
    pub readable: bool,
    /// Deliver write-readiness.
    pub writable: bool,
    /// Edge-triggered delivery (one event per transition) instead of the
    /// level-triggered default.
    pub edge: bool,
}

impl Interest {
    /// Read-readiness only, level-triggered.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        edge: false,
    };
    /// Write-readiness only, level-triggered.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
        edge: false,
    };
    /// Both directions, level-triggered.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
        edge: false,
    };
    /// No readiness at all — errors and hangups still fire, which is how a
    /// loop keeps watching a parked connection for abort.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
        edge: false,
    };

    /// Switches this interest to edge-triggered delivery.
    pub fn edge_triggered(self) -> Interest {
        Interest { edge: true, ..self }
    }

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        if self.edge {
            bits |= sys::EPOLLET;
        }
        bits
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: Token,
    /// Data (or a FIN) can be read.
    pub readable: bool,
    /// The socket can accept more bytes.
    pub writable: bool,
    /// Error or hangup: the descriptor is dead or the peer is gone.
    pub closed: bool,
}

/// An epoll instance plus its reusable kernel event buffer.
pub struct Poller {
    ep: OwnedFd,
    buf: Vec<EpollEvent>,
}

impl Poller {
    /// Opens a new epoll instance.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            ep: sys::epoll_create()?,
            buf: vec![EpollEvent::default(); 256],
        })
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&self, fd: BorrowedFd<'_>, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest set of an already-registered `fd`.
    pub fn reregister(
        &self,
        fd: BorrowedFd<'_>,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: BorrowedFd<'_>) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, Token(0), Interest::NONE)
    }

    fn ctl(
        &self,
        op: usize,
        fd: BorrowedFd<'_>,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let event = EpollEvent {
            events: interest.bits(),
            data: token.0,
        };
        sys::epoll_ctl(self.ep.as_fd(), op, fd.as_raw_fd(), event)
    }

    /// Blocks until readiness or timeout, appending decoded events to `out`
    /// (which is cleared first). `None` blocks indefinitely. A signal
    /// interruption is reported as zero events, not an error.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let ms = match timeout {
            None => -1i32,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128) as i32;
                // Round sub-millisecond timeouts up so a tiny positive
                // timeout never degenerates into a busy spin.
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms
                }
            }
        };
        let n = match sys::epoll_wait(self.ep.as_fd(), &mut self.buf, ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for raw in self.buf.iter().take(n) {
            let bits = raw.events;
            let data = raw.data;
            out.push(Event {
                token: Token(data),
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}
