//! Hashed timer wheel for coarse connection deadlines.

use std::time::{Duration, Instant};

use crate::poll::Token;

struct Entry {
    token: Token,
    gen: u64,
    at: u64,
}

/// A fixed-resolution timer wheel.
///
/// Deadlines are quantized to ticks of the configured resolution and hashed
/// into `slots` buckets by tick number; [`advance`](TimerWheel::advance)
/// walks the cursor forward and fires every entry whose tick has passed.
/// Entries cannot be cancelled — the loop stamps each with a generation and
/// simply ignores fires whose generation is stale. That makes arming O(1),
/// firing amortized O(1), and the wheel entirely allocation-light, which is
/// what a per-connection idle timeout wants: accuracy of one tick is plenty
/// when the timeouts themselves are hundreds of milliseconds.
///
/// The wheel never reads the clock itself; callers pass `now` in, so tests
/// can drive it deterministically.
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    origin: Instant,
    cursor: u64,
    len: usize,
    /// Earliest armed tick (`u64::MAX` when empty). Invariant outside
    /// [`advance`](TimerWheel::advance): `next_at > cursor` or the wheel is
    /// empty — which is what lets the cursor jump over idle stretches
    /// instead of walking them tick by tick.
    next_at: u64,
}

impl TimerWheel {
    /// Creates a wheel with the given tick resolution (floored to 1 ms) and
    /// slot count (floored to 1), anchored at `now`.
    pub fn new(now: Instant, tick: Duration, slots: usize) -> TimerWheel {
        let tick = if tick < Duration::from_millis(1) {
            Duration::from_millis(1)
        } else {
            tick
        };
        TimerWheel {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            tick,
            origin: now,
            cursor: 0,
            len: 0,
            next_at: u64::MAX,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.origin);
        (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Arms a deadline `after` from `now` for `(token, gen)`. The entry
    /// fires on the first [`advance`](TimerWheel::advance) whose `now` has
    /// passed the deadline's tick — never on the current tick, so a zero
    /// `after` still fires strictly later.
    pub fn arm(&mut self, now: Instant, after: Duration, token: Token, gen: u64) {
        // Round up one tick: quantization may never fire an entry early,
        // only up to one tick late.
        let at = (self.tick_of(now + after) + 1).max(self.cursor + 1);
        let idx = (at as usize) % self.slots.len().max(1);
        if let Some(slot) = self.slots.get_mut(idx) {
            slot.push(Entry { token, gen, at });
            self.len += 1;
            self.next_at = self.next_at.min(at);
        }
    }

    /// Number of armed (not yet fired) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Moves the cursor up to `now`, invoking `fire(token, gen)` for every
    /// entry whose tick has passed. Fires within one call are ordered by
    /// tick; entries sharing a tick fire in arming order.
    pub fn advance(&mut self, now: Instant, mut fire: impl FnMut(Token, u64)) {
        let target = self.tick_of(now);
        while self.cursor < target {
            if self.len == 0 {
                // Nothing armed: skip the cursor ahead instead of walking
                // every empty tick after an idle stretch.
                self.cursor = target;
                return;
            }
            if self.next_at > self.cursor + 1 {
                // Nothing armed before `next_at`: jump straight to the tick
                // before the earliest entry. A *non-empty* wheel must skip
                // too — a single far-out deadline must not force a
                // tick-by-tick walk across an idle stretch (an idle hour at
                // 1 ms ticks would otherwise be 3.6M iterations).
                self.cursor = (self.next_at - 1).min(target);
                if self.cursor >= target {
                    return;
                }
            }
            self.cursor += 1;
            let cursor = self.cursor;
            let nslots = self.slots.len().max(1);
            if let Some(slot) = self.slots.get_mut((cursor as usize) % nslots) {
                let before = slot.len();
                let mut kept = Vec::new();
                for entry in slot.drain(..) {
                    if entry.at <= cursor {
                        fire(entry.token, entry.gen);
                    } else {
                        kept.push(entry);
                    }
                }
                *slot = kept;
                self.len -= before - slot.len();
            }
            if self.cursor >= self.next_at {
                // The earliest tick was just processed (its entries fired or
                // were re-bucketed); rescan for the new minimum so the skip
                // invariant `next_at > cursor` holds again.
                self.recompute_next();
            }
        }
    }

    /// Rescans the slots for the earliest armed tick. O(entries), but only
    /// runs when the previous minimum has been consumed — so the cost
    /// amortizes against the fire that consumed it.
    fn recompute_next(&mut self) {
        self.next_at = u64::MAX;
        if self.len == 0 {
            return;
        }
        for slot in &self.slots {
            for entry in slot {
                self.next_at = self.next_at.min(entry.at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn fires_after_its_deadline_not_before() {
        let start = t0();
        let mut wheel = TimerWheel::new(start, Duration::from_millis(10), 16);
        wheel.arm(start, Duration::from_millis(35), Token(7), 1);
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_millis(30), |t, g| fired.push((t, g)));
        assert!(fired.is_empty(), "deadline not reached yet");
        wheel.advance(start + Duration::from_millis(50), |t, g| fired.push((t, g)));
        assert_eq!(fired, vec![(Token(7), 1)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn zero_delay_fires_on_next_advance() {
        let start = t0();
        let mut wheel = TimerWheel::new(start, Duration::from_millis(10), 4);
        wheel.arm(start, Duration::ZERO, Token(1), 0);
        let mut fired = 0;
        wheel.advance(start + Duration::from_millis(15), |_, _| fired += 1);
        assert_eq!(fired, 1);
    }

    #[test]
    fn far_deadlines_survive_wheel_wraparound() {
        let start = t0();
        // 4 slots x 10ms: a 100ms deadline wraps the wheel twice.
        let mut wheel = TimerWheel::new(start, Duration::from_millis(10), 4);
        wheel.arm(start, Duration::from_millis(100), Token(9), 3);
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_millis(60), |t, _| fired.push(t));
        assert!(fired.is_empty(), "survives the first lap");
        wheel.advance(start + Duration::from_millis(120), |t, _| fired.push(t));
        assert_eq!(fired, vec![Token(9)]);
    }

    #[test]
    fn idle_stretch_skips_straight_to_now() {
        let start = t0();
        let mut wheel = TimerWheel::new(start, Duration::from_millis(1), 8);
        // An hour of empty ticks must not require an hour of iterations —
        // this completes instantly because the wheel is empty.
        wheel.advance(start + Duration::from_secs(3600), |_, _| {});
        wheel.arm(
            start + Duration::from_secs(3600),
            Duration::from_millis(5),
            Token(2),
            0,
        );
        let mut fired = 0;
        wheel.advance(
            start + Duration::from_secs(3600) + Duration::from_millis(10),
            |_, _| fired += 1,
        );
        assert_eq!(fired, 1);
    }

    #[test]
    fn one_far_entry_does_not_force_a_tick_walk() {
        let start = t0();
        let wall = Instant::now();
        let mut wheel = TimerWheel::new(start, Duration::from_millis(1), 8);
        // A single entry a day out, then ten days of idle advances. Before
        // the skip-ahead fix a *non-empty* wheel walked every tick — ~864M
        // iterations here, minutes of work; with the fix each advance is a
        // handful of jumps.
        wheel.arm(start, Duration::from_secs(86_400), Token(5), 2);
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_secs(86_399), |t, g| {
            fired.push((t, g))
        });
        assert!(fired.is_empty(), "deadline not reached yet");
        assert_eq!(wheel.len(), 1, "the far entry is still armed");
        wheel.advance(start + Duration::from_secs(86_401), |t, g| {
            fired.push((t, g))
        });
        assert_eq!(fired, vec![(Token(5), 2)]);
        // Re-arming after a skip still fires exactly once, another day out.
        wheel.arm(
            start + Duration::from_secs(86_401),
            Duration::from_secs(86_400),
            Token(6),
            3,
        );
        wheel.advance(start + Duration::from_secs(10 * 86_400), |t, g| {
            fired.push((t, g))
        });
        assert_eq!(fired, vec![(Token(5), 2), (Token(6), 3)]);
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "idle stretches must be skipped, not walked tick by tick"
        );
    }

    #[test]
    fn skip_ahead_respects_entries_between_jumps() {
        let start = t0();
        let mut wheel = TimerWheel::new(start, Duration::from_millis(1), 8);
        // Two entries far apart: the jump to the first must not overshoot,
        // and after it fires the cursor must re-aim at the second.
        wheel.arm(start, Duration::from_millis(50), Token(1), 0);
        wheel.arm(start, Duration::from_secs(10), Token(2), 0);
        let mut fired = Vec::new();
        wheel.advance(
            start + Duration::from_secs(10) + Duration::from_millis(5),
            |t, _| fired.push(t),
        );
        assert_eq!(fired, vec![Token(1), Token(2)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn multiple_entries_fire_in_tick_order() {
        let start = t0();
        let mut wheel = TimerWheel::new(start, Duration::from_millis(10), 16);
        wheel.arm(start, Duration::from_millis(40), Token(2), 0);
        wheel.arm(start, Duration::from_millis(20), Token(1), 0);
        wheel.arm(start, Duration::from_millis(40), Token(3), 0);
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_millis(60), |t, _| fired.push(t));
        assert_eq!(fired, vec![Token(1), Token(2), Token(3)]);
        assert_eq!(wheel.len(), 0);
    }
}
