//! `SO_REUSEPORT` listener construction for multi-loop accept sharding.
//!
//! With reuseport, each event loop binds its *own* listener on the same
//! address; the kernel hashes incoming flows across the group, so accepts
//! shard without any user-space coordination (no lock, no hand-off, no
//! thundering herd). std cannot build such a listener — `SO_REUSEPORT`
//! must be set after `socket()` but before `bind()`, a window
//! `TcpListener::bind` never exposes — so the descriptor is assembled from
//! the raw syscall shims in [`crate::sys`] and handed to std as an
//! `OwnedFd`, after which it is an ordinary `TcpListener`.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsFd;

use crate::sys;

/// Listen backlog for reuseport listeners. Matches the kernel's usual
/// `somaxconn` default; overload beyond it is the admission layer's job.
const BACKLOG: usize = 1024;

/// Binds a TCP listener on `addr` with `SO_REUSEADDR` + `SO_REUSEPORT` set,
/// so further calls with the same (resolved) address join the reuseport
/// group and share the accept load.
///
/// Bind with port 0 once, read back `local_addr()`, and pass the resolved
/// address to the remaining calls — every member must name the same port.
pub fn reuseport_listener(addr: SocketAddr) -> io::Result<TcpListener> {
    let fd = sys::tcp_socket(addr.is_ipv6())?;
    sys::set_reuse_port(fd.as_fd())?;
    sys::bind(fd.as_fd(), &addr)?;
    sys::listen(fd.as_fd(), BACKLOG)?;
    Ok(TcpListener::from(fd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn reuseport_group_binds_one_port_and_accepts_on_some_member() {
        let first = reuseport_listener("127.0.0.1:0".parse().expect("literal addr"))
            .expect("first reuseport bind");
        let addr = first.local_addr().expect("bound addr");
        assert_ne!(addr.port(), 0, "ephemeral port resolved");
        let second = reuseport_listener(addr).expect("second bind joins the group");
        assert_eq!(second.local_addr().expect("addr").port(), addr.port());

        // The kernel hashes flows across the group; with both listeners
        // drained nonblockingly, every connection must land on exactly one.
        first.set_nonblocking(true).expect("nonblocking");
        second.set_nonblocking(true).expect("nonblocking");
        let total = 16;
        let mut clients = Vec::new();
        for _ in 0..total {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(b"x").expect("write");
            clients.push(c);
        }
        let mut accepted = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while accepted.len() < total && std::time::Instant::now() < deadline {
            for listener in [&first, &second] {
                while let Ok((conn, _)) = listener.accept() {
                    accepted.push(conn);
                }
            }
            std::thread::yield_now();
        }
        assert_eq!(
            accepted.len(),
            total,
            "every connection accepted exactly once"
        );
        // The sockets are real duplex streams, not just accept records.
        let mut byte = [0u8; 1];
        for conn in &mut accepted {
            conn.set_nonblocking(false).expect("blocking");
            conn.read_exact(&mut byte).expect("client byte arrives");
            assert_eq!(byte, [b'x']);
        }
    }

    #[test]
    fn plain_port_zero_listener_is_usable_without_a_group() {
        let listener =
            reuseport_listener("127.0.0.1:0".parse().expect("literal addr")).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, peer) = listener.accept().expect("accept");
        assert_eq!(peer.ip(), addr.ip());
        assert_eq!(
            server_side.local_addr().expect("local").port(),
            client.peer_addr().expect("peer").port()
        );
    }
}
