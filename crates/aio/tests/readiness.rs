//! End-to-end readiness tests against real loopback sockets.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsFd;
use std::time::{Duration, Instant};

use fair_aio::{Event, Interest, Poller, Token, Waker};

fn wait_for(poller: &mut Poller, token: Token, deadline: Duration) -> Vec<Event> {
    let start = Instant::now();
    let mut events = Vec::new();
    while start.elapsed() < deadline {
        poller
            .wait(Some(Duration::from_millis(50)), &mut events)
            .expect("poller wait");
        if events.iter().any(|e| e.token == token) {
            return events;
        }
    }
    panic!("no event for {token:?} within {deadline:?}");
}

#[test]
fn listener_becomes_readable_on_connect() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.set_nonblocking(true).expect("nonblocking");
    let mut poller = Poller::new().expect("poller");
    poller
        .register(listener.as_fd(), Token(1), Interest::READ)
        .expect("register");

    let addr = listener.local_addr().expect("addr");
    let _client = TcpStream::connect(addr).expect("connect");

    let events = wait_for(&mut poller, Token(1), Duration::from_secs(5));
    let ev = events.iter().find(|e| e.token == Token(1)).expect("event");
    assert!(ev.readable, "pending accept reads as readiness");
    let (stream, _) = listener.accept().expect("accept");
    drop(stream);
}

#[test]
fn data_and_peer_close_are_observable() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut client = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    server.set_nonblocking(true).expect("nonblocking");

    let mut poller = Poller::new().expect("poller");
    poller
        .register(server.as_fd(), Token(42), Interest::READ)
        .expect("register");

    client.write_all(b"ping").expect("write");
    let events = wait_for(&mut poller, Token(42), Duration::from_secs(5));
    assert!(events.iter().any(|e| e.token == Token(42) && e.readable));
    let mut buf = [0u8; 8];
    let mut server_reader = &server;
    let n = server_reader.read(&mut buf).expect("read");
    assert_eq!(&buf[..n], b"ping");

    drop(client);
    let events = wait_for(&mut poller, Token(42), Duration::from_secs(5));
    let ev = events.iter().find(|e| e.token == Token(42)).expect("event");
    assert!(
        ev.closed || ev.readable,
        "peer close surfaces as hangup or a zero-byte read"
    );
}

#[test]
fn write_interest_fires_and_reregister_silences_it() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = TcpStream::connect(addr).expect("connect");
    client.set_nonblocking(true).expect("nonblocking");
    let (_server, _) = listener.accept().expect("accept");

    let mut poller = Poller::new().expect("poller");
    poller
        .register(client.as_fd(), Token(5), Interest::READ_WRITE)
        .expect("register");
    let events = wait_for(&mut poller, Token(5), Duration::from_secs(5));
    assert!(
        events.iter().any(|e| e.token == Token(5) && e.writable),
        "an idle socket is immediately writable"
    );

    // Drop write interest: the level-triggered writable storm must stop.
    poller
        .reregister(client.as_fd(), Token(5), Interest::READ)
        .expect("reregister");
    let mut events = Vec::new();
    poller
        .wait(Some(Duration::from_millis(100)), &mut events)
        .expect("wait");
    assert!(
        !events.iter().any(|e| e.token == Token(5) && e.writable),
        "writable events stop after interest is dropped"
    );

    poller.deregister(client.as_fd()).expect("deregister");
    poller
        .wait(Some(Duration::from_millis(100)), &mut events)
        .expect("wait");
    assert!(events.is_empty(), "no events after deregistration");
}

#[test]
fn waker_rouses_a_blocked_wait_and_coalesces() {
    let mut poller = Poller::new().expect("poller");
    let waker = Waker::new().expect("waker");
    poller
        .register(waker.as_fd(), Token(0), Interest::READ.edge_triggered())
        .expect("register");

    // Several wakes from another thread coalesce into at least one event.
    let remote = waker.clone();
    let handle = std::thread::spawn(move || {
        for _ in 0..3 {
            remote.wake();
        }
    });
    let events = wait_for(&mut poller, Token(0), Duration::from_secs(5));
    assert!(events.iter().any(|e| e.token == Token(0) && e.readable));
    handle.join().expect("waker thread");
    waker.drain();

    // Drained: no stale event. Then a fresh wake fires a fresh edge.
    let mut events = Vec::new();
    poller
        .wait(Some(Duration::from_millis(50)), &mut events)
        .expect("wait");
    assert!(events.is_empty(), "drained waker stays quiet");
    waker.wake();
    wait_for(&mut poller, Token(0), Duration::from_secs(5));
}
