#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Vendored, dependency-free stand-in for the subset of `proptest` this
//! workspace uses (the build environment has no crates.io access).
//!
//! Supported surface: the [`proptest!`] macro with `#![proptest_config(..)]`
//! and both argument forms (`x in strategy` and `x: Type`), range and
//! `any::<T>()` strategies, [`collection::vec`], and the `prop_assert*`
//! macros. Cases are sampled deterministically from a per-test seed (hash
//! of the test's module path and name), so failures are reproducible run to
//! run; there is no shrinking — a failing case panics with the sampled
//! values available in the assertion message.

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; protocol executions make cases here
        // orders of magnitude more expensive, so default lower. Tests that
        // need a specific count set it via `proptest_config`.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case generator behind [`proptest!`] (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Generator for case number `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the fully qualified test name, mixed with the case
        // index, so every (test, case) pair has an independent stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value source for one [`proptest!`] argument.
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Samples a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy producing any value of `T` (the `x: T` argument form of
/// [`proptest!`] desugars to this).
pub struct Any<T>(core::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `elem` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. Mirrors upstream's surface: an optional
/// `#![proptest_config(expr)]` header and `#[test]` functions whose
/// arguments are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (@run($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $crate::__proptest_bind!(__proptest_rng; $($args)*);
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: binds one [`proptest!`] argument list. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Skips the current case when the assumption fails. Expands to a
/// `continue` of the [`proptest!`] case loop, so it is usable only directly
/// inside a property body (not in nested closures) — which covers this
/// workspace's usage.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Property assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn per_test_streams_are_stable() {
        let a = crate::TestRng::for_case("m::t", 0).next_u64();
        let b = crate::TestRng::for_case("m::t", 0).next_u64();
        let c = crate::TestRng::for_case("m::t", 1).next_u64();
        let d = crate::TestRng::for_case("m::u", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn ranges_and_any_bind(x in 1u64..10, y in 0.0f64..=1.0, z: u8,
                               v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            let _ = z;
            prop_assert!(v.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0usize..=3) {
            prop_assert!(x <= 3);
            prop_assert_eq!(x * 2 % 2, 0);
            prop_assert_ne!(x + 1, 0);
        }
    }
}
