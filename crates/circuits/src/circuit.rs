//! The circuit representation and plain evaluator.

use core::fmt;

/// A wire index. Wires `0..num_inputs` are the circuit inputs; each gate
/// adds one wire.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Wire(pub usize);

/// A gate. Operand wires must have smaller indices than the gate's own
/// output wire (circuits are topologically ordered by construction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Gate {
    /// XOR of two wires.
    Xor(Wire, Wire),
    /// AND of two wires (the only gate with a cost in GMW).
    And(Wire, Wire),
    /// Negation of a wire.
    Not(Wire),
    /// A constant bit.
    Const(bool),
}

/// Errors from circuit validation or evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CircuitError {
    /// A gate or output references a wire that does not exist yet at that
    /// position.
    ForwardReference {
        /// The offending wire.
        wire: usize,
        /// Number of wires available at that point.
        available: usize,
    },
    /// `eval` was called with the wrong number of input bits.
    InputLength {
        /// Bits provided.
        got: usize,
        /// Bits expected.
        expected: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::ForwardReference { wire, available } => {
                write!(
                    f,
                    "wire {wire} referenced before defined ({available} available)"
                )
            }
            CircuitError::InputLength { got, expected } => {
                write!(f, "wrong input length: got {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A boolean circuit: `num_inputs` input wires, a gate list, and the output
/// wires.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Circuit {
    /// Number of input wires.
    pub num_inputs: usize,
    /// Gates in topological order; gate `g` defines wire `num_inputs + g`.
    pub gates: Vec<Gate>,
    /// Output wires, in output order.
    pub outputs: Vec<Wire>,
}

impl Circuit {
    /// Total number of wires (inputs + gates).
    pub fn num_wires(&self) -> usize {
        self.num_inputs + self.gates.len()
    }

    /// Number of AND gates (the GMW communication cost).
    pub fn and_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::And(_, _)))
            .count()
    }

    /// Validates the topological ordering of gate operands and outputs.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ForwardReference`] for the first violation.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let check = |w: Wire, available: usize| {
            if w.0 < available {
                Ok(())
            } else {
                Err(CircuitError::ForwardReference {
                    wire: w.0,
                    available,
                })
            }
        };
        for (g, gate) in self.gates.iter().enumerate() {
            let available = self.num_inputs + g;
            match *gate {
                Gate::Xor(a, b) | Gate::And(a, b) => {
                    check(a, available)?;
                    check(b, available)?;
                }
                Gate::Not(a) => check(a, available)?,
                Gate::Const(_) => {}
            }
        }
        for &o in &self.outputs {
            check(o, self.num_wires())?;
        }
        Ok(())
    }

    /// Evaluates the circuit in the clear.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputLength`] on an input-size mismatch.
    pub fn try_eval(&self, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
        if inputs.len() != self.num_inputs {
            return Err(CircuitError::InputLength {
                got: inputs.len(),
                expected: self.num_inputs,
            });
        }
        let mut wires = Vec::with_capacity(self.num_wires());
        wires.extend_from_slice(inputs);
        for gate in &self.gates {
            let v = match *gate {
                Gate::Xor(a, b) => wires[a.0] ^ wires[b.0],
                Gate::And(a, b) => wires[a.0] & wires[b.0],
                Gate::Not(a) => !wires[a.0],
                Gate::Const(c) => c,
            };
            wires.push(v);
        }
        Ok(self.outputs.iter().map(|o| wires[o.0]).collect())
    }

    /// Evaluates the circuit in the clear.
    ///
    /// # Panics
    ///
    /// Panics on input-size mismatch; use [`Circuit::try_eval`] for a
    /// fallible variant.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        self.try_eval(inputs).expect("input length matches circuit")
    }
}

/// Aggregate statistics of a circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CircuitStats {
    /// Input wires.
    pub inputs: usize,
    /// Total gates.
    pub gates: usize,
    /// AND gates (the cost unit of GMW and Yao).
    pub and_gates: usize,
    /// XOR gates (free in both substrates).
    pub xor_gates: usize,
    /// NOT gates.
    pub not_gates: usize,
    /// Constant gates.
    pub const_gates: usize,
    /// Output wires.
    pub outputs: usize,
    /// AND-depth: the number of sequential AND layers — GMW's online round
    /// count and the latency driver of any secret-shared evaluation.
    pub and_depth: usize,
}

impl Circuit {
    /// Computes the circuit's aggregate statistics.
    pub fn stats(&self) -> CircuitStats {
        let mut wire_depth = vec![0usize; self.num_wires()];
        let mut s = CircuitStats {
            inputs: self.num_inputs,
            gates: self.gates.len(),
            and_gates: 0,
            xor_gates: 0,
            not_gates: 0,
            const_gates: 0,
            outputs: self.outputs.len(),
            and_depth: 0,
        };
        for (g, gate) in self.gates.iter().enumerate() {
            let w = self.num_inputs + g;
            wire_depth[w] = match *gate {
                Gate::Xor(a, b) => {
                    s.xor_gates += 1;
                    wire_depth[a.0].max(wire_depth[b.0])
                }
                Gate::Not(a) => {
                    s.not_gates += 1;
                    wire_depth[a.0]
                }
                Gate::Const(_) => {
                    s.const_gates += 1;
                    0
                }
                Gate::And(a, b) => {
                    s.and_gates += 1;
                    let d = wire_depth[a.0].max(wire_depth[b.0]) + 1;
                    s.and_depth = s.and_depth.max(d);
                    d
                }
            };
        }
        s
    }
}

/// Packs a little-endian bit slice into a `u64`.
///
/// # Panics
///
/// Panics if more than 64 bits are given.
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "too many bits for u64");
    bits.iter()
        .rev()
        .fold(0u64, |acc, &b| (acc << 1) | b as u64)
}

/// Unpacks the low `n` bits of `x`, little-endian.
///
/// # Panics
///
/// Panics if `n > 64`.
pub fn u64_to_bits(x: u64, n: usize) -> Vec<bool> {
    assert!(n <= 64, "too many bits for u64");
    (0..n).map(|i| (x >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_circuit() -> Circuit {
        Circuit {
            num_inputs: 2,
            gates: vec![Gate::Xor(Wire(0), Wire(1))],
            outputs: vec![Wire(2)],
        }
    }

    #[test]
    fn eval_primitive_gates() {
        let c = xor_circuit();
        assert_eq!(c.eval(&[false, false]), vec![false]);
        assert_eq!(c.eval(&[true, false]), vec![true]);
        assert_eq!(c.eval(&[true, true]), vec![false]);

        let and = Circuit {
            num_inputs: 2,
            gates: vec![Gate::And(Wire(0), Wire(1))],
            outputs: vec![Wire(2)],
        };
        assert_eq!(and.eval(&[true, true]), vec![true]);
        assert_eq!(and.eval(&[true, false]), vec![false]);

        let not = Circuit {
            num_inputs: 1,
            gates: vec![Gate::Not(Wire(0))],
            outputs: vec![Wire(1)],
        };
        assert_eq!(not.eval(&[false]), vec![true]);

        let k = Circuit {
            num_inputs: 0,
            gates: vec![Gate::Const(true)],
            outputs: vec![Wire(0)],
        };
        assert_eq!(k.eval(&[]), vec![true]);
    }

    #[test]
    fn validate_catches_forward_reference() {
        let bad = Circuit {
            num_inputs: 1,
            gates: vec![Gate::Xor(Wire(0), Wire(5))],
            outputs: vec![Wire(1)],
        };
        assert_eq!(
            bad.validate(),
            Err(CircuitError::ForwardReference {
                wire: 5,
                available: 1
            })
        );
        assert!(xor_circuit().validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_output() {
        let bad = Circuit {
            num_inputs: 1,
            gates: vec![],
            outputs: vec![Wire(3)],
        };
        assert!(matches!(
            bad.validate(),
            Err(CircuitError::ForwardReference { wire: 3, .. })
        ));
    }

    #[test]
    fn try_eval_rejects_wrong_arity() {
        let c = xor_circuit();
        assert_eq!(
            c.try_eval(&[true]),
            Err(CircuitError::InputLength {
                got: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn and_count_counts_only_ands() {
        let c = Circuit {
            num_inputs: 2,
            gates: vec![
                Gate::And(Wire(0), Wire(1)),
                Gate::Xor(Wire(0), Wire(2)),
                Gate::And(Wire(2), Wire(3)),
                Gate::Not(Wire(0)),
            ],
            outputs: vec![Wire(4)],
        };
        assert_eq!(c.and_count(), 2);
    }

    #[test]
    fn stats_count_gates_and_depth() {
        // x&y feeding into (x&y)&z: two ANDs in sequence, one XOR.
        let c = Circuit {
            num_inputs: 3,
            gates: vec![
                Gate::And(Wire(0), Wire(1)),
                Gate::Xor(Wire(0), Wire(2)),
                Gate::And(Wire(3), Wire(4)),
                Gate::Not(Wire(5)),
                Gate::Const(true),
            ],
            outputs: vec![Wire(6)],
        };
        let s = c.stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.gates, 5);
        assert_eq!(s.and_gates, 2);
        assert_eq!(s.xor_gates, 1);
        assert_eq!(s.not_gates, 1);
        assert_eq!(s.const_gates, 1);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.and_depth, 2);
    }

    #[test]
    fn stats_of_and_free_circuit() {
        let c = Circuit {
            num_inputs: 2,
            gates: vec![Gate::Xor(Wire(0), Wire(1))],
            outputs: vec![Wire(2)],
        };
        assert_eq!(c.stats().and_depth, 0);
        assert_eq!(c.stats().and_gates, 0);
    }

    #[test]
    fn bit_packing_roundtrips() {
        for x in [0u64, 1, 2, 5, 255, 256, u64::MAX] {
            assert_eq!(bits_to_u64(&u64_to_bits(x, 64)), x);
        }
        assert_eq!(u64_to_bits(5, 4), vec![true, false, true, false]);
        assert_eq!(bits_to_u64(&[true, true]), 3);
        assert_eq!(bits_to_u64(&[]), 0);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            CircuitError::InputLength {
                got: 1,
                expected: 2
            }
            .to_string(),
            "wrong input length: got 1, expected 2"
        );
    }
}
