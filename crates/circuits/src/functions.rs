//! Ready-made circuits for the functions the paper's experiments evaluate.
//!
//! Each constructor documents which experiment uses it. All inputs are
//! little-endian bit vectors; multi-party inputs are concatenated in party
//! order.

use crate::builder::Builder;
use crate::circuit::Circuit;

/// The swap function f_swp(x₁, x₂) = (x₂, x₁) on `bits`-bit inputs
/// (Theorem 4 / Lemma 7: the lower-bound function for two-party fairness).
///
/// Output layout: x₂ then x₁.
pub fn swap(bits: usize) -> Circuit {
    let mut b = Builder::new();
    let x1 = b.inputs(bits);
    let x2 = b.inputs(bits);
    let mut out = x2;
    out.extend(x1);
    b.finish(out)
}

/// The logical AND ∧ : {0,1}² → {0,1} (Section 5 / Appendix C.5: the
/// function computed by the leaky protocol Π̃).
pub fn and1() -> Circuit {
    let mut b = Builder::new();
    let x = b.inputs(1);
    let y = b.inputs(1);
    let o = b.and(x[0], y[0]);
    b.finish(vec![o])
}

/// The concatenation function f(x₁, …, xₙ) = x₁ ∥ … ∥ xₙ (Lemmas 12/13/15:
/// the lower-bound function for multi-party fairness).
pub fn concat(n: usize, bits: usize) -> Circuit {
    let mut b = Builder::new();
    let mut out = Vec::with_capacity(n * bits);
    for _ in 0..n {
        out.extend(b.inputs(bits));
    }
    b.finish(out)
}

/// The millionaires' function: outputs 1 iff x₁ > x₂ (example workload).
pub fn millionaires(bits: usize) -> Circuit {
    let mut b = Builder::new();
    let x1 = b.inputs(bits);
    let x2 = b.inputs(bits);
    let g = b.gt(&x1, &x2);
    b.finish(vec![g])
}

/// Equality test: outputs 1 iff x₁ = x₂ (example workload).
pub fn equality(bits: usize) -> Circuit {
    let mut b = Builder::new();
    let x1 = b.inputs(bits);
    let x2 = b.inputs(bits);
    let e = b.eq(&x1, &x2);
    b.finish(vec![e])
}

/// Set membership: outputs 1 iff the single `bits`-bit input is one of the
/// given constants (a one-sided private-set-membership workload; the
/// intersection primitives of [12] reduce to batches of these).
///
/// # Panics
///
/// Panics if a set element does not fit in `bits` bits.
pub fn in_set(bits: usize, set: &[u64]) -> Circuit {
    let mut b = Builder::new();
    let x = b.inputs(bits);
    let mut hits = Vec::with_capacity(set.len());
    for &s in set {
        assert!(bits >= 64 || s < (1u64 << bits), "set element out of range");
        // Constant comparison: AND over per-bit (dis)agreements.
        let mut agree = Vec::with_capacity(bits);
        for (i, &w) in x.iter().enumerate() {
            let bit = (s >> i) & 1 == 1;
            agree.push(if bit { w } else { b.not(w) });
        }
        hits.push(b.and_all(&agree));
    }
    let hit = b.or_all(&hits);
    b.finish(vec![hit])
}

/// n-party XOR (a jointly unbiased coin if each party contributes a random
/// bit): outputs x₁ ⊕ … ⊕ xₙ.
pub fn xor_n(n: usize) -> Circuit {
    let mut b = Builder::new();
    let ins: Vec<_> = (0..n).map(|_| b.inputs(1)[0]).collect();
    let mut acc = ins[0];
    for &w in &ins[1..] {
        acc = b.xor(acc, w);
    }
    b.finish(vec![acc])
}

/// Sum of n `bits`-bit inputs, modulo 2^bits (lottery/auction workload).
pub fn sum_mod(n: usize, bits: usize) -> Circuit {
    let mut b = Builder::new();
    let inputs: Vec<Vec<_>> = (0..n).map(|_| b.inputs(bits)).collect();
    let mut acc = inputs[0].clone();
    for x in &inputs[1..] {
        let s = b.add(&acc, x);
        acc = s[..bits].to_vec(); // drop the carry: mod 2^bits
    }
    b.finish(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{bits_to_u64, u64_to_bits};

    #[test]
    fn swap_swaps() {
        let c = swap(4);
        let mut input = u64_to_bits(0b1010, 4);
        input.extend(u64_to_bits(0b0110, 4));
        let out = c.eval(&input);
        assert_eq!(bits_to_u64(&out[..4]), 0b0110);
        assert_eq!(bits_to_u64(&out[4..]), 0b1010);
    }

    #[test]
    fn and1_truth_table() {
        let c = and1();
        assert_eq!(c.eval(&[true, true]), vec![true]);
        assert_eq!(c.eval(&[true, false]), vec![false]);
        assert_eq!(c.eval(&[false, true]), vec![false]);
        assert_eq!(c.eval(&[false, false]), vec![false]);
        assert_eq!(c.and_count(), 1);
    }

    #[test]
    fn concat_concatenates() {
        let c = concat(3, 2);
        let mut input = u64_to_bits(1, 2);
        input.extend(u64_to_bits(2, 2));
        input.extend(u64_to_bits(3, 2));
        let out = c.eval(&input);
        assert_eq!(bits_to_u64(&out[..2]), 1);
        assert_eq!(bits_to_u64(&out[2..4]), 2);
        assert_eq!(bits_to_u64(&out[4..]), 3);
    }

    #[test]
    fn millionaires_compares() {
        let c = millionaires(8);
        for (a, b) in [(200u64, 100u64), (100, 200), (5, 5), (0, 255)] {
            let mut input = u64_to_bits(a, 8);
            input.extend(u64_to_bits(b, 8));
            assert_eq!(c.eval(&input), vec![a > b], "{a} > {b}");
        }
    }

    #[test]
    fn equality_checks() {
        let c = equality(6);
        for (a, b) in [(9u64, 9u64), (9, 10), (0, 63)] {
            let mut input = u64_to_bits(a, 6);
            input.extend(u64_to_bits(b, 6));
            assert_eq!(c.eval(&input), vec![a == b]);
        }
    }

    #[test]
    fn in_set_detects_membership() {
        let c = in_set(6, &[3, 17, 42]);
        for x in 0..64u64 {
            let expect = [3, 17, 42].contains(&x);
            assert_eq!(c.eval(&u64_to_bits(x, 6)), vec![expect], "x = {x}");
        }
    }

    #[test]
    fn in_set_empty_set_is_always_false() {
        let c = in_set(4, &[]);
        for x in 0..16u64 {
            assert_eq!(c.eval(&u64_to_bits(x, 4)), vec![false]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn in_set_rejects_oversized_elements() {
        let _ = in_set(3, &[9]);
    }

    #[test]
    fn xor_n_is_parity() {
        let c = xor_n(5);
        assert_eq!(c.eval(&[true, false, true, true, false]), vec![true]);
        assert_eq!(c.eval(&[true, true, false, false, false]), vec![false]);
    }

    #[test]
    fn sum_mod_wraps() {
        let c = sum_mod(3, 4);
        let mut input = u64_to_bits(7, 4);
        input.extend(u64_to_bits(9, 4));
        input.extend(u64_to_bits(5, 4));
        assert_eq!(bits_to_u64(&c.eval(&input)), (7 + 9 + 5) % 16);
    }

    #[test]
    fn all_functions_validate() {
        for c in [
            swap(8),
            and1(),
            concat(4, 3),
            millionaires(8),
            equality(8),
            xor_n(3),
            sum_mod(4, 8),
            in_set(5, &[1, 2, 3]),
        ] {
            assert!(c.validate().is_ok());
        }
    }
}
