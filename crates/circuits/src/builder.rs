//! A circuit builder with the standard gadget library.

use crate::circuit::{Circuit, Gate, Wire};

/// Incrementally builds a [`Circuit`].
///
/// Wires are allocated in topological order, so circuits produced by the
/// builder always validate.
#[derive(Clone, Debug, Default)]
pub struct Builder {
    num_inputs: usize,
    gates: Vec<Gate>,
    inputs_frozen: bool,
}

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Allocates `n` fresh input wires.
    ///
    /// # Panics
    ///
    /// Panics if called after the first gate has been added (inputs come
    /// first in the wire numbering).
    pub fn inputs(&mut self, n: usize) -> Vec<Wire> {
        assert!(!self.inputs_frozen, "inputs must be allocated before gates");
        let start = self.num_inputs;
        self.num_inputs += n;
        (start..start + n).map(Wire).collect()
    }

    fn push(&mut self, gate: Gate) -> Wire {
        self.inputs_frozen = true;
        let w = Wire(self.num_inputs + self.gates.len());
        self.gates.push(gate);
        w
    }

    /// A constant bit.
    pub fn constant(&mut self, b: bool) -> Wire {
        self.push(Gate::Const(b))
    }

    /// XOR gate.
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Gate::Xor(a, b))
    }

    /// AND gate.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Gate::And(a, b))
    }

    /// NOT gate.
    pub fn not(&mut self, a: Wire) -> Wire {
        self.push(Gate::Not(a))
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        let na = self.not(a);
        let nb = self.not(b);
        let n = self.and(na, nb);
        self.not(n)
    }

    /// `if sel { a } else { b }` — one AND: b ⊕ sel·(a ⊕ b).
    pub fn mux(&mut self, sel: Wire, a: Wire, b: Wire) -> Wire {
        let d = self.xor(a, b);
        let sd = self.and(sel, d);
        self.xor(b, sd)
    }

    /// Bitwise XOR of equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_vec(&mut self, a: &[Wire], b: &[Wire]) -> Vec<Wire> {
        assert_eq!(a.len(), b.len(), "xor_vec length mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// Bitwise mux of equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mux_vec(&mut self, sel: Wire, a: &[Wire], b: &[Wire]) -> Vec<Wire> {
        assert_eq!(a.len(), b.len(), "mux_vec length mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    /// AND of all wires in `ws` (`true` for empty input).
    pub fn and_all(&mut self, ws: &[Wire]) -> Wire {
        match ws.split_first() {
            None => self.constant(true),
            Some((&first, rest)) => rest.iter().fold(first, |acc, &w| self.and(acc, w)),
        }
    }

    /// OR of all wires in `ws` (`false` for empty input).
    pub fn or_all(&mut self, ws: &[Wire]) -> Wire {
        match ws.split_first() {
            None => self.constant(false),
            Some((&first, rest)) => rest.iter().fold(first, |acc, &w| self.or(acc, w)),
        }
    }

    /// Equality of two bit vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn eq(&mut self, a: &[Wire], b: &[Wire]) -> Wire {
        assert_eq!(a.len(), b.len(), "eq length mismatch");
        let diffs: Vec<Wire> = self.xor_vec(a, b);
        let nz = self.or_all(&diffs);
        self.not(nz)
    }

    /// Ripple-carry adder over little-endian vectors; returns
    /// `a.len() + 1` bits (sum plus final carry).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add(&mut self, a: &[Wire], b: &[Wire]) -> Vec<Wire> {
        assert_eq!(a.len(), b.len(), "add length mismatch");
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = self.constant(false);
        for (&x, &y) in a.iter().zip(b) {
            // sum = x ^ y ^ c; carry' = (x & y) | (c & (x ^ y))
            let xy = self.xor(x, y);
            let s = self.xor(xy, carry);
            let t1 = self.and(x, y);
            let t2 = self.and(carry, xy);
            carry = self.or(t1, t2);
            out.push(s);
        }
        out.push(carry);
        out
    }

    /// Unsigned `a > b` over little-endian vectors (the "millionaires"
    /// comparator).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn gt(&mut self, a: &[Wire], b: &[Wire]) -> Wire {
        assert_eq!(a.len(), b.len(), "gt length mismatch");
        // Scan from LSB: gt = a_i & !b_i  |  (a_i == b_i) & gt_prev.
        let mut gt = self.constant(false);
        for (&x, &y) in a.iter().zip(b) {
            let ny = self.not(y);
            let win = self.and(x, ny);
            let same = {
                let d = self.xor(x, y);
                self.not(d)
            };
            let keep = self.and(same, gt);
            gt = self.or(win, keep);
        }
        gt
    }

    /// Finalizes the circuit with the given output wires.
    pub fn finish(self, outputs: Vec<Wire>) -> Circuit {
        let c = Circuit {
            num_inputs: self.num_inputs,
            gates: self.gates,
            outputs,
        };
        debug_assert!(c.validate().is_ok());
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{bits_to_u64, u64_to_bits};
    use proptest::prelude::*;

    #[test]
    fn or_truth_table() {
        let mut b = Builder::new();
        let ins = b.inputs(2);
        let o = b.or(ins[0], ins[1]);
        let c = b.finish(vec![o]);
        assert_eq!(c.eval(&[false, false]), vec![false]);
        assert_eq!(c.eval(&[true, false]), vec![true]);
        assert_eq!(c.eval(&[false, true]), vec![true]);
        assert_eq!(c.eval(&[true, true]), vec![true]);
    }

    #[test]
    fn mux_selects() {
        let mut b = Builder::new();
        let ins = b.inputs(3); // sel, a, b
        let o = b.mux(ins[0], ins[1], ins[2]);
        let c = b.finish(vec![o]);
        assert_eq!(c.eval(&[true, true, false]), vec![true]); // sel -> a
        assert_eq!(c.eval(&[false, true, false]), vec![false]); // !sel -> b
    }

    #[test]
    fn eq_detects_equality() {
        let mut b = Builder::new();
        let x = b.inputs(4);
        let y = b.inputs(4);
        let o = b.eq(&x, &y);
        let c = b.finish(vec![o]);
        for (u, v) in [(3u64, 3u64), (3, 5), (0, 0), (15, 14)] {
            let mut input = u64_to_bits(u, 4);
            input.extend(u64_to_bits(v, 4));
            assert_eq!(c.eval(&input), vec![u == v], "{u} == {v}");
        }
    }

    #[test]
    fn and_all_or_all_handle_empty() {
        let mut b = Builder::new();
        let t = b.and_all(&[]);
        let f = b.or_all(&[]);
        let c = b.finish(vec![t, f]);
        assert_eq!(c.eval(&[]), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "inputs must be allocated before gates")]
    fn inputs_after_gates_panic() {
        let mut b = Builder::new();
        let _ = b.constant(true);
        let _ = b.inputs(1);
    }

    proptest! {
        #[test]
        fn prop_adder_matches_u64(a in 0u64..(1 << 16), b in 0u64..(1 << 16)) {
            let mut bld = Builder::new();
            let x = bld.inputs(16);
            let y = bld.inputs(16);
            let s = bld.add(&x, &y);
            let c = bld.finish(s);
            let mut input = u64_to_bits(a, 16);
            input.extend(u64_to_bits(b, 16));
            prop_assert_eq!(bits_to_u64(&c.eval(&input)), a + b);
        }

        #[test]
        fn prop_gt_matches_u64(a in 0u64..(1 << 12), b in 0u64..(1 << 12)) {
            let mut bld = Builder::new();
            let x = bld.inputs(12);
            let y = bld.inputs(12);
            let g = bld.gt(&x, &y);
            let c = bld.finish(vec![g]);
            let mut input = u64_to_bits(a, 12);
            input.extend(u64_to_bits(b, 12));
            prop_assert_eq!(c.eval(&input), vec![a > b]);
        }

        #[test]
        fn prop_mux_vec(sel: bool, a in 0u64..256, b in 0u64..256) {
            let mut bld = Builder::new();
            let s = bld.inputs(1);
            let x = bld.inputs(8);
            let y = bld.inputs(8);
            let m = bld.mux_vec(s[0], &x, &y);
            let c = bld.finish(m);
            let mut input = vec![sel];
            input.extend(u64_to_bits(a, 8));
            input.extend(u64_to_bits(b, 8));
            prop_assert_eq!(bits_to_u64(&c.eval(&input)), if sel { a } else { b });
        }
    }
}
