#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Boolean circuit IR, builder and gadget library.
//!
//! The GMW-style unfair-SFE substrate in `fair-sfe` evaluates functions
//! given as boolean circuits over XOR/AND/NOT/CONST gates (XOR and NOT are
//! free in the GMW sharing; AND consumes a Beaver triple). This crate
//! provides the circuit representation, a builder with the standard
//! gadgets, and a plain evaluator used as the correctness reference.
//!
//! # Examples
//!
//! ```
//! use fair_circuits::Builder;
//!
//! // A 2-bit adder: inputs a0 a1 b0 b1 (little-endian), output 3 bits.
//! let mut b = Builder::new();
//! let a = b.inputs(2);
//! let c = b.inputs(2);
//! let sum = b.add(&a, &c);
//! let circuit = b.finish(sum);
//! assert_eq!(circuit.eval(&[true, false, true, false]), vec![false, true, false]); // 1+1=2
//! ```

mod builder;
mod circuit;
pub mod functions;

pub use builder::Builder;
pub use circuit::{bits_to_u64, u64_to_bits, Circuit, CircuitError, CircuitStats, Gate, Wire};
