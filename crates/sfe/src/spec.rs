//! Value-level function specifications for ideal SFE functionalities.

use std::sync::Arc;

use fair_runtime::Value;
use rand::rngs::StdRng;

/// The result of evaluating an [`IdealSpec`]: ground-truth facts for the
/// ledger (at minimum the key `"y"` with the global output) and one private
/// output per party.
#[derive(Clone, Debug)]
pub struct IdealOutput {
    /// Facts recorded into the execution ledger.
    pub facts: Vec<(String, Value)>,
    /// Per-party private outputs (length = number of parties).
    pub per_party: Vec<Value>,
}

/// A (possibly randomized) n-party function at the `Value` level, as
/// evaluated by a trusted party.
#[derive(Clone)]
pub struct IdealSpec {
    name: String,
    n: usize,
    #[allow(clippy::type_complexity)]
    eval: Arc<dyn Fn(&[Value], &mut StdRng) -> IdealOutput + Send + Sync>,
}

impl core::fmt::Debug for IdealSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("IdealSpec")
            .field("name", &self.name)
            .field("n", &self.n)
            .finish()
    }
}

impl IdealSpec {
    /// Creates a spec from an arbitrary evaluation closure.
    pub fn new<F>(name: &str, n: usize, eval: F) -> IdealSpec
    where
        F: Fn(&[Value], &mut StdRng) -> IdealOutput + Send + Sync + 'static,
    {
        IdealSpec {
            name: name.to_string(),
            n,
            eval: Arc::new(eval),
        }
    }

    /// A deterministic function with one *global* output that every party
    /// receives (the paper's wlog normal form). Records the fact `"y"`.
    pub fn global<F>(name: &str, n: usize, f: F) -> IdealSpec
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        IdealSpec::new(name, n, move |inputs, _rng| {
            let y = f(inputs);
            IdealOutput {
                facts: vec![("y".to_string(), y.clone())],
                per_party: vec![y; inputs.len()],
            }
        })
    }

    /// The spec's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Evaluates the function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`IdealSpec::n`].
    pub fn eval(&self, inputs: &[Value], rng: &mut StdRng) -> IdealOutput {
        assert_eq!(inputs.len(), self.n, "ideal spec arity mismatch");
        let out = (self.eval)(inputs, rng);
        assert_eq!(
            out.per_party.len(),
            self.n,
            "ideal spec output arity mismatch"
        );
        out
    }
}

/// The swap function f_swp(x₁, x₂) = (x₂, x₁) as a global-output spec: the
/// global output is the pair (x₂, x₁).
pub fn swap_spec() -> IdealSpec {
    IdealSpec::global("f_swp", 2, |inputs| {
        Value::pair(inputs[1].clone(), inputs[0].clone())
    })
}

/// The n-party concatenation function of Lemma 12.
pub fn concat_spec(n: usize) -> IdealSpec {
    IdealSpec::global("f_concat", n, |inputs| Value::Tuple(inputs.to_vec()))
}

/// The logical AND of two bits (Section 5's example).
pub fn and_spec() -> IdealSpec {
    IdealSpec::global("f_and", 2, |inputs| {
        let a = inputs[0].as_scalar().unwrap_or(0) & 1;
        let b = inputs[1].as_scalar().unwrap_or(0) & 1;
        Value::Scalar(a & b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn global_spec_gives_everyone_y_and_records_fact() {
        let spec = swap_spec();
        let mut rng = StdRng::seed_from_u64(0);
        let out = spec.eval(&[Value::Scalar(1), Value::Scalar(2)], &mut rng);
        let y = Value::pair(Value::Scalar(2), Value::Scalar(1));
        assert_eq!(out.per_party, vec![y.clone(), y.clone()]);
        assert_eq!(out.facts, vec![("y".to_string(), y)]);
    }

    #[test]
    fn concat_spec_tuples_inputs() {
        let spec = concat_spec(3);
        let mut rng = StdRng::seed_from_u64(0);
        let ins = vec![Value::Scalar(7), Value::Scalar(8), Value::Scalar(9)];
        let out = spec.eval(&ins, &mut rng);
        assert_eq!(out.per_party[0], Value::Tuple(ins));
    }

    #[test]
    fn and_spec_truth_table() {
        let spec = and_spec();
        let mut rng = StdRng::seed_from_u64(0);
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let out = spec.eval(&[Value::Scalar(a), Value::Scalar(b)], &mut rng);
            assert_eq!(out.per_party[0], Value::Scalar(a & b));
        }
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_checked() {
        let spec = and_spec();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = spec.eval(&[Value::Scalar(1)], &mut rng);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", and_spec()).contains("f_and"));
    }
}
