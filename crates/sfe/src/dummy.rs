//! Dummy parties: the trivial protocol around an ideal functionality.
//!
//! The "dummy F-hybrid protocol" Φ^F (paper, Definition 19) has each party
//! forward its input to the functionality and output whatever comes back.
//! Executing dummy parties against [`FairSfe`] gives the ideal-fairness
//! benchmark; executing them against [`RandAbortSfe`] with a simulator as
//! the adversary is the *ideal world* of the 1/p-security comparisons in
//! Section 5.
//!
//! [`FairSfe`]: crate::ideal::FairSfe
//! [`RandAbortSfe`]: crate::ideal::RandAbortSfe

use fair_runtime::{Envelope, FuncId, OutMsg, Party, RoundCtx, Value};

use crate::ideal::{RandMsg, SfeMsg};

/// Dummy party speaking [`SfeMsg`] to functionality 0.
#[derive(Clone, Debug)]
pub struct SfeDummyParty {
    input: Value,
    sent: bool,
    out: Option<Value>,
}

impl SfeDummyParty {
    /// Creates the party with its input.
    pub fn new(input: Value) -> SfeDummyParty {
        SfeDummyParty {
            input,
            sent: false,
            out: None,
        }
    }
}

impl Party<SfeMsg> for SfeDummyParty {
    fn round(&mut self, _ctx: &RoundCtx, inbox: &[Envelope<SfeMsg>]) -> Vec<OutMsg<SfeMsg>> {
        for e in inbox {
            match &e.msg {
                SfeMsg::Output(v) => self.out = Some(v.clone()),
                SfeMsg::Abort => self.out = Some(Value::Bot),
                SfeMsg::Input(_) => {}
            }
        }
        if !self.sent {
            self.sent = true;
            return vec![OutMsg::to_func(
                FuncId(0),
                SfeMsg::Input(self.input.clone()),
            )];
        }
        Vec::new()
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<SfeMsg>> {
        Box::new(self.clone())
    }
}

/// Dummy party speaking [`RandMsg`] to functionality 0.
#[derive(Clone, Debug)]
pub struct RandDummyParty {
    input: Value,
    sent: bool,
    out: Option<Value>,
}

impl RandDummyParty {
    /// Creates the party with its input.
    pub fn new(input: Value) -> RandDummyParty {
        RandDummyParty {
            input,
            sent: false,
            out: None,
        }
    }
}

impl Party<RandMsg> for RandDummyParty {
    fn round(&mut self, _ctx: &RoundCtx, inbox: &[Envelope<RandMsg>]) -> Vec<OutMsg<RandMsg>> {
        for e in inbox {
            if let RandMsg::Output(v) = &e.msg {
                self.out = Some(v.clone());
            }
        }
        if !self.sent {
            self.sent = true;
            return vec![OutMsg::to_func(
                FuncId(0),
                RandMsg::Input(self.input.clone()),
            )];
        }
        Vec::new()
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<RandMsg>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::FairSfe;
    use crate::spec::concat_spec;
    use fair_runtime::{execute, Instance, PartyId, Passive};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dummy_protocol_realizes_the_functionality() {
        let n = 4;
        let inst = Instance {
            parties: (0..n)
                .map(|i| {
                    Box::new(SfeDummyParty::new(Value::Scalar(i as u64 + 1)))
                        as Box<dyn Party<SfeMsg>>
                })
                .collect(),
            funcs: vec![Box::new(FairSfe::new(concat_spec(n)))],
        };
        let mut rng = StdRng::seed_from_u64(0);
        let res = execute(inst, &mut Passive, &mut rng, 20).expect("execution succeeds");
        let y = Value::Tuple((1..=n as u64).map(Value::Scalar).collect());
        assert!(res.all_honest_output(&y));
        for i in 0..n {
            assert_eq!(res.outputs[&PartyId(i)], y);
        }
    }

    #[test]
    fn dummy_party_outputs_bot_on_abort_message() {
        let mut p = SfeDummyParty::new(Value::Scalar(0));
        let ctx = RoundCtx {
            id: PartyId(0),
            n: 2,
            round: 0,
        };
        let env = Envelope {
            from: fair_runtime::Endpoint::Func(FuncId(0)),
            to: fair_runtime::Destination::Party(PartyId(0)),
            msg: SfeMsg::Abort,
        };
        let _ = p.round(&ctx, &[env]);
        assert_eq!(p.output(), Some(Value::Bot));
    }
}
