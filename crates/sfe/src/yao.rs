//! A Yao-style garbled-circuit two-party SFE protocol (the paper's
//! two-party SFE reference is Lindell–Pinkas [22]).
//!
//! The garbler (p₁) assigns every wire a pair of 16-byte labels related by
//! a global FreeXOR offset Δ: XOR and NOT gates are free, each AND gate
//! becomes a four-row garbled table encrypted under the input labels with
//! an SHA-256-derived key stream and a zero-tag for row detection. The
//! evaluator (p₂) obtains the labels of its own input bits through an
//! oblivious-transfer functionality, evaluates the circuit label by label,
//! decodes the outputs against the garbler's output map, and (in this
//! public-output variant) forwards the result to the garbler.
//!
//! **Security scope**: private against honest-but-curious parties and
//! abort-robust (any malformed table, label or decoding fails closed),
//! mirroring [`crate::gmw`]'s scope. Like every standard unfair SFE
//! protocol, its last message decides fairness: the *evaluator* learns the
//! output one round before the garbler, so a rushing corrupted evaluator
//! collects payoff γ₁₀ with certainty — the asymmetric counterpart of
//! GMW's symmetric unfairness, exercised by the E13 composability
//! experiment.

use std::collections::BTreeMap;
use std::sync::Arc;

use fair_circuits::{bits_to_u64, Circuit, Gate};
use fair_crypto::sha256::sha256_parts;
use fair_runtime::{
    Envelope, FuncCtx, Functionality, Instance, OutMsg, Party, PartyId, RoundCtx, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Wire-label length in bytes.
pub const LABEL_LEN: usize = 16;

/// A wire label.
pub type Label = [u8; LABEL_LEN];

fn random_label<R: Rng + ?Sized>(rng: &mut R) -> Label {
    let mut l = [0u8; LABEL_LEN];
    rng.fill_bytes(&mut l);
    l
}

fn xor_label(a: &Label, b: &Label) -> Label {
    let mut out = [0u8; LABEL_LEN];
    for i in 0..LABEL_LEN {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// Key stream for one garbled-table row: H(ka ‖ kb ‖ gate ‖ row).
fn row_pad(ka: &Label, kb: &Label, gate: u64, row: u8) -> [u8; 32] {
    sha256_parts(&[b"yao-row", ka, kb, &gate.to_be_bytes(), &[row]])
}

/// Output-map entry: H(label) — lets the evaluator decode without learning
/// the complementary label.
fn out_hash(label: &Label) -> [u8; 32] {
    sha256_parts(&[b"yao-out", label])
}

/// One garbled AND gate: four rows, each `label ‖ zero-tag` XOR-encrypted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GarbledGate {
    rows: [[u8; LABEL_LEN + 8]; 4],
}

/// Everything the evaluator needs: garbled tables, the garbler's input
/// labels, and the output decode map.
#[derive(Clone, Debug)]
pub struct GarbledCircuit {
    /// Tables for AND gates, keyed by gate index.
    tables: BTreeMap<usize, GarbledGate>,
    /// Clear labels for constant gates (the constant's label).
    consts: BTreeMap<usize, Label>,
    /// The garbler's input-wire labels (wire index → active label).
    garbler_inputs: BTreeMap<usize, Label>,
    /// Output decode map: per output wire, (H(label₀), H(label₁)).
    output_map: Vec<([u8; 32], [u8; 32])>,
}

/// The garbler's secrets (kept locally; needed to answer OT requests).
#[derive(Clone, Debug)]
pub struct GarblerSecrets {
    /// For each evaluator input wire: (label₀, label₁).
    pub evaluator_label_pairs: BTreeMap<usize, (Label, Label)>,
}

/// Garbles `circuit` for a garbler holding `garbler_bits` on the first
/// `garbler_bits.len()` input wires; the remaining input wires belong to
/// the evaluator.
///
/// # Panics
///
/// Panics if `garbler_bits` exceeds the circuit's input count.
pub fn garble(
    circuit: &Circuit,
    garbler_bits: &[bool],
    rng: &mut StdRng,
) -> (GarbledCircuit, GarblerSecrets) {
    assert!(
        garbler_bits.len() <= circuit.num_inputs,
        "garbler input width"
    );
    let delta = random_label(rng);
    // label0 per wire; label1 = label0 ⊕ Δ (FreeXOR).
    let mut label0: Vec<Label> = Vec::with_capacity(circuit.num_wires());
    for _ in 0..circuit.num_inputs {
        label0.push(random_label(rng));
    }
    let mut tables = BTreeMap::new();
    let mut consts = BTreeMap::new();
    for (g, gate) in circuit.gates.iter().enumerate() {
        let w0 = match *gate {
            Gate::Xor(a, b) => xor_label(&label0[a.0], &label0[b.0]),
            Gate::Not(a) => xor_label(&label0[a.0], &delta),
            Gate::Const(c) => {
                let l = random_label(rng);
                // The evaluator always holds the label of the constant's
                // actual value.
                let active = if c { xor_label(&l, &delta) } else { l };
                consts.insert(g, active);
                l
            }
            Gate::And(a, b) => {
                let c0 = random_label(rng);
                let mut rows = [[0u8; LABEL_LEN + 8]; 4];
                for (row, item) in rows.iter_mut().enumerate() {
                    let bit_a = row & 1 == 1;
                    let bit_b = row & 2 == 2;
                    let ka = if bit_a {
                        xor_label(&label0[a.0], &delta)
                    } else {
                        label0[a.0]
                    };
                    let kb = if bit_b {
                        xor_label(&label0[b.0], &delta)
                    } else {
                        label0[b.0]
                    };
                    let out = if bit_a && bit_b {
                        xor_label(&c0, &delta)
                    } else {
                        c0
                    };
                    let pad = row_pad(&ka, &kb, g as u64, row as u8);
                    for (dst, (o, p)) in item.iter_mut().zip(out.iter().zip(&pad)) {
                        *dst = o ^ p;
                    }
                    // zero-tag
                    item[LABEL_LEN..LABEL_LEN + 8].copy_from_slice(&pad[LABEL_LEN..LABEL_LEN + 8]);
                }
                tables.insert(g, GarbledGate { rows });
                c0
            }
        };
        label0.push(w0);
    }
    let garbler_inputs: BTreeMap<usize, Label> = garbler_bits
        .iter()
        .enumerate()
        .map(|(w, &b)| {
            (
                w,
                if b {
                    xor_label(&label0[w], &delta)
                } else {
                    label0[w]
                },
            )
        })
        .collect();
    let evaluator_label_pairs: BTreeMap<usize, (Label, Label)> = (garbler_bits.len()
        ..circuit.num_inputs)
        .map(|w| (w, (label0[w], xor_label(&label0[w], &delta))))
        .collect();
    let output_map = circuit
        .outputs
        .iter()
        .map(|o| {
            (
                out_hash(&label0[o.0]),
                out_hash(&xor_label(&label0[o.0], &delta)),
            )
        })
        .collect();
    (
        GarbledCircuit {
            tables,
            consts,
            garbler_inputs,
            output_map,
        },
        GarblerSecrets {
            evaluator_label_pairs,
        },
    )
}

/// Evaluates a garbled circuit given the evaluator's own input labels.
///
/// Returns the output bits, or `None` if any table row fails to decrypt or
/// an output label does not decode — the fail-closed abort path.
pub fn evaluate(
    circuit: &Circuit,
    garbled: &GarbledCircuit,
    evaluator_labels: &BTreeMap<usize, Label>,
) -> Option<Vec<bool>> {
    let mut active: Vec<Option<Label>> = vec![None; circuit.num_wires()];
    for (&w, l) in &garbled.garbler_inputs {
        *active.get_mut(w)? = Some(*l);
    }
    for (&w, l) in evaluator_labels {
        *active.get_mut(w)? = Some(*l);
    }
    for (g, gate) in circuit.gates.iter().enumerate() {
        let w = circuit.num_inputs + g;
        let label = match *gate {
            Gate::Xor(a, b) => xor_label(&active[a.0]?, &active[b.0]?),
            Gate::Not(a) => active[a.0]?, // semantics flip lives in the label pair
            Gate::Const(_) => *garbled.consts.get(&g)?,
            Gate::And(a, b) => {
                let ka = active[a.0]?;
                let kb = active[b.0]?;
                let table = garbled.tables.get(&g)?;
                let mut found = None;
                for row in 0..4u8 {
                    let pad = row_pad(&ka, &kb, g as u64, row);
                    let ct = &table.rows[row as usize];
                    if ct[LABEL_LEN..]
                        .iter()
                        .zip(&pad[LABEL_LEN..LABEL_LEN + 8])
                        .all(|(c, p)| c == p)
                    {
                        let mut out = [0u8; LABEL_LEN];
                        for i in 0..LABEL_LEN {
                            out[i] = ct[i] ^ pad[i];
                        }
                        found = Some(out);
                        break;
                    }
                }
                found?
            }
        };
        active[w] = Some(label);
    }
    let mut bits = Vec::with_capacity(circuit.outputs.len());
    for (o, (h0, h1)) in circuit.outputs.iter().zip(&garbled.output_map) {
        let h = out_hash(&active[o.0]?);
        if h == *h0 {
            bits.push(false);
        } else if h == *h1 {
            bits.push(true);
        } else {
            return None;
        }
    }
    Some(bits)
}

/// NOT-gate handling note: a NOT gate reuses its operand's label but the
/// garbler swaps the *meaning* of the pair. With FreeXOR, W¹ = W⁰ ⊕ Δ, so
/// the NOT output's zero-label is the operand's one-label; `garble`
/// records exactly that, and downstream gates key off the recorded pair.
/// (This constant documents the convention for auditors; it has no
/// runtime role.)
pub const NOT_CONVENTION: &str = "not(x): label0(out) = label1(in)";

/// Wire messages of the Yao protocol.
#[derive(Clone, Debug)]
pub enum YaoMsg {
    /// Evaluator → OT functionality: choice bits for its input wires.
    OtChoose(Vec<bool>),
    /// Garbler → OT functionality: label pairs for the evaluator's wires
    /// (wire-ordered).
    OtPairs(Vec<(Label, Label)>),
    /// OT functionality → evaluator: the chosen labels (wire-ordered).
    OtLabels(Vec<Label>),
    /// Garbler → evaluator: the garbled circuit.
    Garbled(Box<GarbledCircuitWire>),
    /// Evaluator → garbler: the decoded output bits.
    Output(Vec<bool>),
}

/// The on-wire form of a garbled circuit (gate-indexed tables flattened).
#[derive(Clone, Debug)]
pub struct GarbledCircuitWire {
    /// The garbled circuit.
    pub garbled: GarbledCircuit,
}

/// The one-out-of-two OT functionality: matches choices with label pairs
/// and delivers the chosen labels to the evaluator.
#[derive(Default)]
pub struct OtFunctionality {
    choices: Option<Vec<bool>>,
    pairs: Option<Vec<(Label, Label)>>,
    done: bool,
}

impl OtFunctionality {
    /// Creates the functionality.
    pub fn new() -> OtFunctionality {
        OtFunctionality::default()
    }
}

impl Functionality<YaoMsg> for OtFunctionality {
    fn name(&self) -> &str {
        "F_ot"
    }

    fn on_round(
        &mut self,
        _ctx: &mut FuncCtx<'_>,
        incoming: &[Envelope<YaoMsg>],
    ) -> Vec<OutMsg<YaoMsg>> {
        for e in incoming {
            match (&e.msg, e.from_party()) {
                (YaoMsg::OtChoose(c), Some(p)) if p == PartyId(1) && self.choices.is_none() => {
                    self.choices = Some(c.clone());
                }
                (YaoMsg::OtPairs(p), Some(q)) if q == PartyId(0) && self.pairs.is_none() => {
                    self.pairs = Some(p.clone());
                }
                _ => {}
            }
        }
        if self.done {
            return Vec::new();
        }
        if let (Some(choices), Some(pairs)) = (&self.choices, &self.pairs) {
            self.done = true;
            if choices.len() != pairs.len() {
                return Vec::new(); // malformed request: starve (abort path)
            }
            let labels: Vec<Label> = choices
                .iter()
                .zip(pairs)
                .map(|(&c, &(l0, l1))| if c { l1 } else { l0 })
                .collect();
            return vec![OutMsg::to_party(PartyId(1), YaoMsg::OtLabels(labels))];
        }
        Vec::new()
    }
}

/// Rounds a party waits before concluding the counterparty aborted.
const DEADLINE: usize = 8;

/// The garbler party (p₁).
pub struct GarblerParty {
    circuit: Arc<Circuit>,
    bits: Vec<bool>,
    secrets: Option<GarblerSecrets>,
    garbled: Option<GarbledCircuit>,
    out: Option<Value>,
    pregen_seed: u64,
}

impl core::fmt::Debug for GarblerParty {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GarblerParty")
            .field("out", &self.out)
            .finish()
    }
}

impl Clone for GarblerParty {
    fn clone(&self) -> Self {
        GarblerParty {
            circuit: Arc::clone(&self.circuit),
            bits: self.bits.clone(),
            secrets: self.secrets.clone(),
            garbled: self.garbled.clone(),
            out: self.out.clone(),
            pregen_seed: self.pregen_seed,
        }
    }
}

impl GarblerParty {
    /// Creates the garbler with its input bits.
    pub fn new(circuit: Arc<Circuit>, bits: Vec<bool>, rng: &mut StdRng) -> GarblerParty {
        use rand::RngExt;
        GarblerParty {
            circuit,
            bits,
            secrets: None,
            garbled: None,
            out: None,
            pregen_seed: rng.random(),
        }
    }
}

impl Party<YaoMsg> for GarblerParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<YaoMsg>]) -> Vec<OutMsg<YaoMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        for e in inbox {
            if let (YaoMsg::Output(bits), Some(p)) = (&e.msg, e.from_party()) {
                if p == PartyId(1) {
                    // Public-output variant: adopt the evaluator's report.
                    self.out = Some(Value::Scalar(bits_to_u64(bits)));
                    return Vec::new();
                }
            }
        }
        if ctx.round == 0 {
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(self.pregen_seed);
            let (garbled, secrets) = garble(&self.circuit, &self.bits, &mut rng);
            let pairs: Vec<(Label, Label)> =
                secrets.evaluator_label_pairs.values().copied().collect();
            self.garbled = Some(garbled.clone());
            self.secrets = Some(secrets);
            return vec![
                OutMsg::to_func(fair_runtime::FuncId(0), YaoMsg::OtPairs(pairs)),
                OutMsg::to_party(
                    PartyId(1),
                    YaoMsg::Garbled(Box::new(GarbledCircuitWire { garbled })),
                ),
            ];
        }
        if ctx.round >= DEADLINE {
            self.out = Some(Value::Bot);
        }
        Vec::new()
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<YaoMsg>> {
        Box::new(self.clone())
    }
}

/// The evaluator party (p₂).
pub struct EvaluatorParty {
    circuit: Arc<Circuit>,
    bits: Vec<bool>,
    garbled: Option<GarbledCircuit>,
    labels: Option<Vec<Label>>,
    out: Option<Value>,
}

impl core::fmt::Debug for EvaluatorParty {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EvaluatorParty")
            .field("out", &self.out)
            .finish()
    }
}

impl Clone for EvaluatorParty {
    fn clone(&self) -> Self {
        EvaluatorParty {
            circuit: Arc::clone(&self.circuit),
            bits: self.bits.clone(),
            garbled: self.garbled.clone(),
            labels: self.labels.clone(),
            out: self.out.clone(),
        }
    }
}

impl EvaluatorParty {
    /// Creates the evaluator with its input bits.
    pub fn new(circuit: Arc<Circuit>, bits: Vec<bool>) -> EvaluatorParty {
        EvaluatorParty {
            circuit,
            bits,
            garbled: None,
            labels: None,
            out: None,
        }
    }

    fn try_evaluate(&mut self) -> Option<Vec<bool>> {
        let garbled = self.garbled.as_ref()?;
        let labels = self.labels.as_ref()?;
        let offset = self.circuit.num_inputs - self.bits.len();
        let map: BTreeMap<usize, Label> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (offset + i, l))
            .collect();
        evaluate(&self.circuit, garbled, &map)
    }
}

impl Party<YaoMsg> for EvaluatorParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<YaoMsg>]) -> Vec<OutMsg<YaoMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        for e in inbox {
            match &e.msg {
                YaoMsg::Garbled(g) if self.garbled.is_none() => {
                    self.garbled = Some(g.garbled.clone());
                }
                YaoMsg::OtLabels(l) if self.labels.is_none() => {
                    self.labels = Some(l.clone());
                }
                _ => {}
            }
        }
        if ctx.round == 0 {
            return vec![OutMsg::to_func(
                fair_runtime::FuncId(0),
                YaoMsg::OtChoose(self.bits.clone()),
            )];
        }
        if self.garbled.is_some() && self.labels.is_some() {
            return match self.try_evaluate() {
                Some(bits) => {
                    self.out = Some(Value::Scalar(bits_to_u64(&bits)));
                    vec![OutMsg::to_party(PartyId(0), YaoMsg::Output(bits))]
                }
                None => {
                    self.out = Some(Value::Bot);
                    Vec::new()
                }
            };
        }
        if ctx.round >= DEADLINE {
            self.out = Some(Value::Bot);
        }
        Vec::new()
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<YaoMsg>> {
        Box::new(self.clone())
    }
}

/// Builds a ready-to-run Yao instance. `inputs[0]` belongs to the garbler
/// (first `widths[0]` circuit inputs), `inputs[1]` to the evaluator.
pub fn yao_instance(
    circuit: &Arc<Circuit>,
    widths: [usize; 2],
    inputs: [u64; 2],
    rng: &mut StdRng,
) -> Instance<YaoMsg> {
    assert_eq!(
        widths[0] + widths[1],
        circuit.num_inputs,
        "widths cover the inputs"
    );
    let g_bits = fair_circuits::u64_to_bits(inputs[0], widths[0]);
    let e_bits = fair_circuits::u64_to_bits(inputs[1], widths[1]);
    Instance {
        parties: vec![
            Box::new(GarblerParty::new(Arc::clone(circuit), g_bits, rng)),
            Box::new(EvaluatorParty::new(Arc::clone(circuit), e_bits)),
        ],
        funcs: vec![Box::new(OtFunctionality::new())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_circuits::functions;
    use fair_runtime::{execute, Passive};
    use rand::SeedableRng;

    fn run_yao(
        circuit: Circuit,
        widths: [usize; 2],
        inputs: [u64; 2],
        seed: u64,
    ) -> fair_runtime::ExecutionResult {
        let circuit = Arc::new(circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = yao_instance(&circuit, widths, inputs, &mut rng);
        execute(inst, &mut Passive, &mut rng, 20).expect("execution succeeds")
    }

    #[test]
    fn garble_evaluate_roundtrip_offline() {
        let circuit = functions::millionaires(8);
        let mut rng = StdRng::seed_from_u64(3);
        for (a, b) in [(200u64, 100u64), (100, 200), (7, 7)] {
            let g_bits = fair_circuits::u64_to_bits(a, 8);
            let (garbled, secrets) = garble(&circuit, &g_bits, &mut rng);
            let e_bits = fair_circuits::u64_to_bits(b, 8);
            let labels: BTreeMap<usize, Label> = secrets
                .evaluator_label_pairs
                .iter()
                .map(|(&w, &(l0, l1))| (w, if e_bits[w - 8] { l1 } else { l0 }))
                .collect();
            let out = evaluate(&circuit, &garbled, &labels).expect("evaluates");
            assert_eq!(out, vec![a > b], "{a} > {b}");
        }
    }

    #[test]
    fn yao_protocol_computes_millionaires() {
        for (a, b, seed) in [(200u64, 100u64, 1u64), (100, 200, 2), (55, 55, 3)] {
            let res = run_yao(functions::millionaires(8), [8, 8], [a, b], seed);
            let expect = Value::Scalar((a > b) as u64);
            assert!(
                res.all_honest_output(&expect),
                "{a} > {b}: {:?}",
                res.outputs
            );
        }
    }

    #[test]
    fn yao_protocol_handles_xor_not_const_gates() {
        // (a XOR b) with NOT and constants mixed in.
        let mut bld = fair_circuits::Builder::new();
        let x = bld.inputs(4);
        let y = bld.inputs(4);
        let t = bld.constant(true);
        let xor = bld.xor_vec(&x, &y);
        let n = bld.not(xor[0]);
        let a = bld.and(n, t);
        let o = bld.or(a, xor[3]);
        let circuit = bld.finish(vec![o]);
        for (a_in, b_in, seed) in [(0b1010u64, 0b0110u64, 5u64), (0, 0, 6), (15, 15, 7)] {
            let mut input = fair_circuits::u64_to_bits(a_in, 4);
            input.extend(fair_circuits::u64_to_bits(b_in, 4));
            let expect = circuit.eval(&input)[0] as u64;
            let res = run_yao(circuit.clone(), [4, 4], [a_in, b_in], seed);
            assert!(
                res.all_honest_output(&Value::Scalar(expect)),
                "{a_in}^{b_in}"
            );
        }
    }

    #[test]
    fn tampered_table_fails_closed() {
        let circuit = functions::and1();
        let mut rng = StdRng::seed_from_u64(11);
        let (mut garbled, secrets) = garble(&circuit, &[true], &mut rng);
        // Corrupt the single AND table.
        let gate = *garbled.tables.keys().next().expect("one AND gate");
        garbled.tables.get_mut(&gate).expect("present").rows[0][0] ^= 1;
        garbled.tables.get_mut(&gate).expect("present").rows[1][0] ^= 1;
        garbled.tables.get_mut(&gate).expect("present").rows[2][0] ^= 1;
        garbled.tables.get_mut(&gate).expect("present").rows[3][0] ^= 1;
        let labels: BTreeMap<usize, Label> = secrets
            .evaluator_label_pairs
            .iter()
            .map(|(&w, &(l0, _))| (w, l0))
            .collect();
        // All four zero-tags are only damaged with the label bytes — rows
        // may still be *detected*, but the decrypted label then fails the
        // output map. Either way: no wrong output.
        match evaluate(&circuit, &garbled, &labels) {
            None => {}
            Some(bits) => assert_eq!(bits, vec![false], "1 AND 0 is 0"),
        }
    }

    #[test]
    fn wrong_labels_cannot_evaluate() {
        let circuit = functions::millionaires(4);
        let mut rng = StdRng::seed_from_u64(12);
        let (garbled, _) = garble(&circuit, &fair_circuits::u64_to_bits(9, 4), &mut rng);
        // Random garbage labels: the AND rows never authenticate.
        let labels: BTreeMap<usize, Label> = (4..8).map(|w| (w, random_label(&mut rng))).collect();
        assert_eq!(evaluate(&circuit, &garbled, &labels), None);
    }

    #[test]
    fn silent_garbler_aborts_the_evaluator() {
        struct Silent;
        impl fair_runtime::Adversary<YaoMsg> for Silent {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                _v: &fair_runtime::RoundView<'_, YaoMsg>,
                _c: &mut fair_runtime::AdvControl<'_, YaoMsg>,
                _r: &mut StdRng,
            ) {
            }
        }
        let circuit = Arc::new(functions::and1());
        let mut rng = StdRng::seed_from_u64(13);
        let inst = yao_instance(&circuit, [1, 1], [1, 1], &mut rng);
        let res = execute(inst, &mut Silent, &mut rng, 20).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(1)], Value::Bot);
    }
}
