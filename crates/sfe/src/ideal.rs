//! The ideal SFE functionalities the paper's protocols are built on (and
//! compared against).
//!
//! * [`SfeWithAbort`] — standard *unfair* SFE ("security with abort"): the
//!   adversary receives corrupted parties' outputs first and may then abort
//!   before honest parties receive theirs. This is the hybrid that phase 1
//!   of Π^Opt_2SFE / Π^Opt_nSFE invokes (instantiable by GMW, see
//!   [`crate::gmw`]).
//! * [`FairSfe`] — fully fair SFE: outputs are delivered to everyone
//!   simultaneously. The "dummy protocol" around it (Definition 19's
//!   Φ^F_sfe) is the benchmark for *ideal* fairness.
//! * [`RandAbortSfe`] — the functionality F^{f,$}_sfe with randomized abort
//!   from Figure 1 (the only figure in the paper): on an adversarial abort,
//!   the honest party's output is replaced by a sample from a distribution
//!   depending only on its own input. This is the ideal target realized by
//!   the Gordon–Katz protocols (Theorems 23/24).
//!
//! All functionalities enforce guaranteed termination with a stall guard:
//! if the adversary withholds a corrupted party's input past the deadline,
//! the evaluation aborts.

use std::collections::BTreeMap;
use std::sync::Arc;

use fair_runtime::{
    Destination, Endpoint, Envelope, FuncCtx, Functionality, OutMsg, PartyId, Value,
};
use rand::rngs::StdRng;

use crate::spec::IdealSpec;

/// Messages understood by [`SfeWithAbort`] and [`FairSfe`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SfeMsg {
    /// Party → functionality: contribute an input.
    Input(Value),
    /// Functionality → party: your output.
    Output(Value),
    /// Adversary → functionality: abort. Functionality → party: the
    /// evaluation aborted.
    Abort,
}

/// Rounds the functionality waits for missing inputs before aborting.
const STALL_LIMIT: usize = 2;

#[derive(Debug)]
enum Phase {
    Collecting {
        got: BTreeMap<PartyId, Value>,
        first_round: Option<usize>,
    },
    Window {
        per_party: Vec<Value>,
    },
    Done,
}

/// Unfair SFE with abort (the F_sfe-with-abort hybrid).
///
/// Round structure: parties send [`SfeMsg::Input`]; once all `n` inputs are
/// in, corrupted parties' outputs go out immediately (the rushing adversary
/// sees them next round); honest outputs follow one round later unless the
/// adversary sends [`SfeMsg::Abort`] in between, in which case honest
/// parties receive [`SfeMsg::Abort`].
pub struct SfeWithAbort {
    spec: IdealSpec,
    phase: Phase,
    /// Prefix for ledger fact keys (lets two instances coexist).
    fact_prefix: String,
}

impl SfeWithAbort {
    /// Creates the functionality for `spec`.
    pub fn new(spec: IdealSpec) -> SfeWithAbort {
        SfeWithAbort {
            spec,
            phase: Phase::Collecting {
                got: BTreeMap::new(),
                first_round: None,
            },
            fact_prefix: String::new(),
        }
    }

    /// Creates the functionality with a ledger fact prefix.
    pub fn with_fact_prefix(spec: IdealSpec, prefix: &str) -> SfeWithAbort {
        SfeWithAbort {
            spec,
            phase: Phase::Collecting {
                got: BTreeMap::new(),
                first_round: None,
            },
            fact_prefix: prefix.to_string(),
        }
    }

    fn abort_all(&mut self, n: usize) -> Vec<OutMsg<SfeMsg>> {
        self.phase = Phase::Done;
        (0..n)
            .map(|i| OutMsg::to_party(PartyId(i), SfeMsg::Abort))
            .collect()
    }
}

fn adversary_sent_abort(incoming: &[Envelope<SfeMsg>]) -> bool {
    incoming
        .iter()
        .any(|e| e.from == Endpoint::Adversary && e.msg == SfeMsg::Abort)
}

fn collect_inputs(got: &mut BTreeMap<PartyId, Value>, incoming: &[Envelope<SfeMsg>]) {
    for e in incoming {
        if let (Some(p), SfeMsg::Input(v)) = (e.from_party(), &e.msg) {
            got.entry(p).or_insert_with(|| v.clone());
        }
    }
}

impl Functionality<SfeMsg> for SfeWithAbort {
    fn name(&self) -> &str {
        "F_sfe_abort"
    }

    fn on_round(
        &mut self,
        ctx: &mut FuncCtx<'_>,
        incoming: &[Envelope<SfeMsg>],
    ) -> Vec<OutMsg<SfeMsg>> {
        let n = ctx.n;
        match &mut self.phase {
            Phase::Collecting { got, first_round } => {
                if adversary_sent_abort(incoming) {
                    return self.abort_all(n);
                }
                collect_inputs(got, incoming);
                if !got.is_empty() && first_round.is_none() {
                    *first_round = Some(ctx.round);
                }
                if got.len() == n {
                    let inputs: Vec<Value> = got.values().cloned().collect();
                    let out = self.spec.eval(&inputs, ctx.rng);
                    for (k, v) in &out.facts {
                        ctx.ledger
                            .record(&format!("{}{}", self.fact_prefix, k), v.clone());
                    }
                    let mut msgs = Vec::new();
                    let corrupted_any = !ctx.corrupted.is_empty();
                    for (i, v) in out.per_party.iter().enumerate() {
                        if ctx.corrupted.contains(&PartyId(i)) {
                            msgs.push(OutMsg::to_party(PartyId(i), SfeMsg::Output(v.clone())));
                        }
                    }
                    if corrupted_any {
                        self.phase = Phase::Window {
                            per_party: out.per_party,
                        };
                    } else {
                        for (i, v) in out.per_party.iter().enumerate() {
                            msgs.push(OutMsg::to_party(PartyId(i), SfeMsg::Output(v.clone())));
                        }
                        self.phase = Phase::Done;
                    }
                    return msgs;
                }
                // Stall guard.
                if let Some(fr) = *first_round {
                    if ctx.round >= fr + STALL_LIMIT {
                        return self.abort_all(n);
                    }
                }
                Vec::new()
            }
            Phase::Window { per_party } => {
                let per_party = per_party.clone();
                if adversary_sent_abort(incoming) {
                    self.phase = Phase::Done;
                    return (0..n)
                        .filter(|i| !ctx.corrupted.contains(&PartyId(*i)))
                        .map(|i| OutMsg::to_party(PartyId(i), SfeMsg::Abort))
                        .collect();
                }
                self.phase = Phase::Done;
                (0..n)
                    .filter(|i| !ctx.corrupted.contains(&PartyId(*i)))
                    .map(|i| OutMsg::to_party(PartyId(i), SfeMsg::Output(per_party[i].clone())))
                    .collect()
            }
            Phase::Done => Vec::new(),
        }
    }
}

/// Fully fair SFE: all outputs delivered simultaneously; the adversary can
/// only abort *before* the evaluation completes.
pub struct FairSfe {
    spec: IdealSpec,
    phase: Phase,
}

impl FairSfe {
    /// Creates the functionality for `spec`.
    pub fn new(spec: IdealSpec) -> FairSfe {
        FairSfe {
            spec,
            phase: Phase::Collecting {
                got: BTreeMap::new(),
                first_round: None,
            },
        }
    }
}

impl Functionality<SfeMsg> for FairSfe {
    fn name(&self) -> &str {
        "F_sfe_fair"
    }

    fn on_round(
        &mut self,
        ctx: &mut FuncCtx<'_>,
        incoming: &[Envelope<SfeMsg>],
    ) -> Vec<OutMsg<SfeMsg>> {
        let n = ctx.n;
        match &mut self.phase {
            Phase::Collecting { got, first_round } => {
                if adversary_sent_abort(incoming) {
                    self.phase = Phase::Done;
                    return (0..n)
                        .map(|i| OutMsg::to_party(PartyId(i), SfeMsg::Abort))
                        .collect();
                }
                collect_inputs(got, incoming);
                if !got.is_empty() && first_round.is_none() {
                    *first_round = Some(ctx.round);
                }
                if got.len() == n {
                    let inputs: Vec<Value> = got.values().cloned().collect();
                    let out = self.spec.eval(&inputs, ctx.rng);
                    for (k, v) in &out.facts {
                        ctx.ledger.record(k, v.clone());
                    }
                    self.phase = Phase::Done;
                    return out
                        .per_party
                        .iter()
                        .enumerate()
                        .map(|(i, v)| OutMsg::to_party(PartyId(i), SfeMsg::Output(v.clone())))
                        .collect();
                }
                if let Some(fr) = *first_round {
                    if ctx.round >= fr + STALL_LIMIT {
                        self.phase = Phase::Done;
                        return (0..n)
                            .map(|i| OutMsg::to_party(PartyId(i), SfeMsg::Abort))
                            .collect();
                    }
                }
                Vec::new()
            }
            Phase::Window { .. } => unreachable!("FairSfe never enters the abort window"),
            Phase::Done => Vec::new(),
        }
    }
}

/// Messages understood by [`RandAbortSfe`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RandMsg {
    /// Party → functionality: contribute an input.
    Input(Value),
    /// Functionality → party: your output.
    Output(Value),
    /// Adversary → functionality: deliver party i's output now.
    Deliver(usize),
    /// Adversary → functionality: abort — undelivered honest outputs are
    /// replaced by samples from the replacement distribution and delivered.
    Abort,
}

/// Replacement distribution for F^$: given the party index and that party's
/// own input, sample a replacement output.
pub type ReplacementDist = Arc<dyn Fn(usize, &Value, &mut StdRng) -> Value + Send + Sync>;

/// Rounds after evaluation before undelivered outputs are auto-delivered
/// (keeps executions with inactive adversaries terminating).
const AUTO_DELIVER_AFTER: usize = 4;

/// The two-party functionality with randomized abort, F^{f,$}_sfe (Fig. 1).
pub struct RandAbortSfe {
    spec: IdealSpec,
    dist: ReplacementDist,
    inputs: BTreeMap<PartyId, Value>,
    first_round: Option<usize>,
    computed: Option<Vec<Value>>,
    computed_round: usize,
    delivered: Vec<bool>,
    aborted: bool,
}

impl RandAbortSfe {
    /// Creates the functionality. `spec` must be a two-party spec; `dist`
    /// is the family of replacement distributions Y_i(x_i).
    ///
    /// # Panics
    ///
    /// Panics if `spec.n() != 2`.
    pub fn new(spec: IdealSpec, dist: ReplacementDist) -> RandAbortSfe {
        assert_eq!(spec.n(), 2, "F^$ is a two-party functionality");
        RandAbortSfe {
            spec,
            dist,
            inputs: BTreeMap::new(),
            first_round: None,
            computed: None,
            computed_round: 0,
            delivered: vec![false, false],
            aborted: false,
        }
    }

    fn deliver(&mut self, i: usize, out: &mut Vec<OutMsg<RandMsg>>) {
        if let Some(vals) = &self.computed {
            if !self.delivered[i] {
                self.delivered[i] = true;
                out.push(OutMsg::to_party(
                    PartyId(i),
                    RandMsg::Output(vals[i].clone()),
                ));
            }
        }
    }
}

impl Functionality<RandMsg> for RandAbortSfe {
    fn name(&self) -> &str {
        "F_sfe_rand_abort"
    }

    fn on_round(
        &mut self,
        ctx: &mut FuncCtx<'_>,
        incoming: &[Envelope<RandMsg>],
    ) -> Vec<OutMsg<RandMsg>> {
        let mut out = Vec::new();
        // Input collection.
        for e in incoming {
            if let (Some(p), RandMsg::Input(v)) = (e.from_party(), &e.msg) {
                self.inputs.entry(p).or_insert_with(|| v.clone());
                self.first_round.get_or_insert(ctx.round);
            }
        }
        if self.computed.is_none() && self.inputs.len() == 2 {
            let inputs: Vec<Value> = self.inputs.values().cloned().collect();
            let o = self.spec.eval(&inputs, ctx.rng);
            for (k, v) in &o.facts {
                ctx.ledger.record(k, v.clone());
            }
            ctx.ledger.record("y1", o.per_party[0].clone());
            ctx.ledger.record("y2", o.per_party[1].clone());
            self.computed = Some(o.per_party);
            self.computed_round = ctx.round;
        }
        if self.computed.is_none() {
            if let Some(fr) = self.first_round {
                if ctx.round >= fr + STALL_LIMIT {
                    // Missing input: deliver ⊥ to everyone and stop.
                    self.computed = Some(vec![Value::Bot, Value::Bot]);
                    self.computed_round = ctx.round;
                    for i in 0..2 {
                        self.deliver(i, &mut out);
                    }
                    return out;
                }
            }
            return out;
        }
        // Adversary instructions.
        for e in incoming {
            if e.from != Endpoint::Adversary {
                continue;
            }
            match &e.msg {
                RandMsg::Deliver(i) if *i < 2 => self.deliver(*i, &mut out),
                RandMsg::Abort if !self.aborted => {
                    self.aborted = true;
                    // Replace every *undelivered honest* party's output.
                    for i in 0..2 {
                        let pid = PartyId(i);
                        if !self.delivered[i] && !ctx.corrupted.contains(&pid) {
                            let x = self.inputs.get(&pid).cloned().unwrap_or(Value::Bot);
                            let replacement = (self.dist)(i, &x, ctx.rng);
                            ctx.ledger
                                .record(&format!("replaced_{}", i + 1), replacement.clone());
                            if let Some(vals) = &mut self.computed {
                                vals[i] = replacement;
                            }
                        }
                    }
                    for i in 0..2 {
                        self.deliver(i, &mut out);
                    }
                }
                _ => {}
            }
        }
        // Auto-delivery deadline.
        if ctx.round >= self.computed_round + AUTO_DELIVER_AFTER {
            for i in 0..2 {
                self.deliver(i, &mut out);
            }
        }
        out
    }
}

/// Convenience: sends an input message for party `pid` to functionality 0.
pub fn input_msg(v: Value) -> OutMsg<SfeMsg> {
    OutMsg {
        to: Destination::Func(fair_runtime::FuncId(0)),
        msg: SfeMsg::Input(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dummy::SfeDummyParty;
    use crate::spec::{and_spec, swap_spec};
    use fair_runtime::{execute, AdvControl, Adversary, Instance, Passive, RoundView};
    use rand::SeedableRng;

    fn two_party_instance(
        func: Box<dyn Functionality<SfeMsg>>,
        x1: Value,
        x2: Value,
    ) -> Instance<SfeMsg> {
        Instance {
            parties: vec![
                Box::new(SfeDummyParty::new(x1)),
                Box::new(SfeDummyParty::new(x2)),
            ],
            funcs: vec![func],
        }
    }

    #[test]
    fn sfe_with_abort_delivers_without_corruption() {
        let inst = two_party_instance(
            Box::new(SfeWithAbort::new(swap_spec())),
            Value::Scalar(10),
            Value::Scalar(20),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let res = execute(inst, &mut Passive, &mut rng, 20).expect("execution succeeds");
        let y = Value::pair(Value::Scalar(20), Value::Scalar(10));
        assert!(res.all_honest_output(&y));
        assert_eq!(res.ledger.get("y"), Some(&y));
    }

    /// Corrupts p1, submits an input, grabs the output, then aborts.
    struct GrabAndAbort {
        learned: Option<Value>,
    }

    impl Adversary<SfeMsg> for GrabAndAbort {
        fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
            vec![PartyId(0)]
        }

        fn on_round(
            &mut self,
            view: &RoundView<'_, SfeMsg>,
            ctrl: &mut AdvControl<'_, SfeMsg>,
            _rng: &mut StdRng,
        ) {
            if view.round == 0 {
                ctrl.send_as(
                    PartyId(0),
                    OutMsg::to_func(fair_runtime::FuncId(0), SfeMsg::Input(Value::Scalar(5))),
                );
            }
            for e in view.delivered {
                if let SfeMsg::Output(v) = &e.msg {
                    self.learned = Some(v.clone());
                    ctrl.send_adv(OutMsg::to_func(fair_runtime::FuncId(0), SfeMsg::Abort));
                }
            }
        }

        fn learned(&self) -> Option<Value> {
            self.learned.clone()
        }
    }

    #[test]
    fn sfe_with_abort_lets_adversary_learn_then_abort() {
        let inst = two_party_instance(
            Box::new(SfeWithAbort::new(swap_spec())),
            Value::Scalar(10),
            Value::Scalar(20),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut adv = GrabAndAbort { learned: None };
        let res = execute(inst, &mut adv, &mut rng, 20).expect("execution succeeds");
        // Adversary (as p1) learned y = (x2, x1') = (20, 5).
        let y = Value::pair(Value::Scalar(20), Value::Scalar(5));
        assert_eq!(res.learned, Some(y.clone()));
        assert_eq!(res.ledger.get("y"), Some(&y));
        // Honest p2 got ⊥.
        assert_eq!(res.outputs[&PartyId(1)], Value::Bot);
    }

    #[test]
    fn fair_sfe_gives_no_abort_window() {
        let inst = two_party_instance(
            Box::new(FairSfe::new(swap_spec())),
            Value::Scalar(10),
            Value::Scalar(20),
        );
        let mut rng = StdRng::seed_from_u64(2);
        let mut adv = GrabAndAbort { learned: None };
        let res = execute(inst, &mut adv, &mut rng, 20).expect("execution succeeds");
        // The abort arrives only after outputs were already delivered to
        // everyone: honest p2 still gets the real output.
        let y = Value::pair(Value::Scalar(20), Value::Scalar(5));
        assert_eq!(res.outputs[&PartyId(1)], y);
    }

    #[test]
    fn sfe_with_abort_stalls_out_on_withheld_input() {
        struct Withhold;
        impl Adversary<SfeMsg> for Withhold {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                _v: &RoundView<'_, SfeMsg>,
                _c: &mut AdvControl<'_, SfeMsg>,
                _r: &mut StdRng,
            ) {
            }
        }
        let inst = two_party_instance(
            Box::new(SfeWithAbort::new(swap_spec())),
            Value::Scalar(1),
            Value::Scalar(2),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let res = execute(inst, &mut Withhold, &mut rng, 30).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(1)], Value::Bot);
    }

    #[test]
    fn rand_abort_auto_delivers_with_passive_adversary() {
        let dist: ReplacementDist = Arc::new(|_, _, rng| {
            use rand::RngExt;
            Value::Scalar(rng.random_range(0..2))
        });
        let inst = Instance {
            parties: vec![
                Box::new(crate::dummy::RandDummyParty::new(Value::Scalar(1))),
                Box::new(crate::dummy::RandDummyParty::new(Value::Scalar(1))),
            ],
            funcs: vec![Box::new(RandAbortSfe::new(and_spec(), dist))],
        };
        let mut rng = StdRng::seed_from_u64(4);
        let res = execute(inst, &mut Passive, &mut rng, 30).expect("execution succeeds");
        assert!(res.all_honest_output(&Value::Scalar(1)));
    }

    /// Simulator-style adversary for F^$: corrupts p1, learns the output,
    /// then aborts so p2's output is replaced by a random one.
    struct RandGrabAbort {
        learned: Option<Value>,
    }

    impl Adversary<RandMsg> for RandGrabAbort {
        fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
            vec![PartyId(0)]
        }

        fn on_round(
            &mut self,
            view: &RoundView<'_, RandMsg>,
            ctrl: &mut AdvControl<'_, RandMsg>,
            _rng: &mut StdRng,
        ) {
            let fid = fair_runtime::FuncId(0);
            if view.round == 0 {
                ctrl.send_as(
                    PartyId(0),
                    OutMsg::to_func(fid, RandMsg::Input(Value::Scalar(1))),
                );
                ctrl.send_adv(OutMsg::to_func(fid, RandMsg::Deliver(0)));
            }
            for e in view.delivered {
                if let RandMsg::Output(v) = &e.msg {
                    self.learned = Some(v.clone());
                    ctrl.send_adv(OutMsg::to_func(fid, RandMsg::Abort));
                }
            }
        }

        fn learned(&self) -> Option<Value> {
            self.learned.clone()
        }
    }

    #[test]
    fn rand_abort_replaces_undelivered_honest_output() {
        // Replacement distribution: always 9 (distinguishable marker).
        let dist: ReplacementDist = Arc::new(|_, _, _| Value::Scalar(9));
        let inst = Instance {
            parties: vec![
                Box::new(crate::dummy::RandDummyParty::new(Value::Scalar(1))),
                Box::new(crate::dummy::RandDummyParty::new(Value::Scalar(1))),
            ],
            funcs: vec![Box::new(RandAbortSfe::new(and_spec(), dist))],
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut adv = RandGrabAbort { learned: None };
        let res = execute(inst, &mut adv, &mut rng, 30).expect("execution succeeds");
        assert_eq!(
            res.learned,
            Some(Value::Scalar(1)),
            "adversary saw the real output"
        );
        assert_eq!(
            res.outputs[&PartyId(1)],
            Value::Scalar(9),
            "honest output was replaced"
        );
        assert!(res.ledger.get("replaced_2").is_some());
    }
}
