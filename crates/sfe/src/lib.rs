#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! The SFE substrate for the `fair-protocols` workspace.
//!
//! The paper's optimally fair protocols are built in hybrid models on top
//! of standard (unfair) secure function evaluation. This crate provides
//! both sides of that composition:
//!
//! * [`spec`] — value-level function specifications ([`IdealSpec`]).
//! * [`ideal`] — the ideal functionalities: unfair SFE with abort
//!   ([`SfeWithAbort`]), fully fair SFE ([`FairSfe`]) and the
//!   randomized-abort functionality F^$ of the paper's Figure 1
//!   ([`RandAbortSfe`]).
//! * [`dummy`] — dummy parties (the Φ^F protocols of Definition 19).
//! * [`privout`] — the Appendix-B public-to-private output transform
//!   (one-time-pad blinded output vectors).
//! * [`gmw`] — a real GMW-style boolean-circuit SFE protocol with a Beaver
//!   triple dealer, used to instantiate the unfair-SFE hybrid and to run
//!   the composability experiment.
//! * [`yao`] — a second, independent instantiation: Yao garbled circuits
//!   with FreeXOR over an OT functionality (the paper's two-party SFE
//!   reference [22]).
//!
//! [`IdealSpec`]: spec::IdealSpec
//! [`SfeWithAbort`]: ideal::SfeWithAbort
//! [`FairSfe`]: ideal::FairSfe
//! [`RandAbortSfe`]: ideal::RandAbortSfe

pub mod dummy;
pub mod gmw;
pub mod ideal;
pub mod privout;
pub mod spec;
pub mod yao;
