//! A GMW-style n-party boolean-circuit SFE protocol.
//!
//! This is the *real-protocol* instantiation of the unfair-SFE phase that
//! the paper's optimal protocols invoke as a hybrid (the paper cites GMW
//! \[16\]). Inputs are XOR-shared among all parties; XOR/NOT/CONST gates are
//! local; each AND gate consumes one Beaver triple dealt by a trusted
//! dealer functionality (the standard offline phase); the output is
//! publicly reconstructed by broadcasting output-wire shares.
//!
//! **Security scope.** The online protocol is information-theoretically
//! private against honest-but-curious coalitions and handles *abort-style*
//! deviations (any missing or malformed message makes honest parties
//! abort). This matches how the fairness experiments use it: the
//! attackers of interest deviate by withholding messages at chosen rounds —
//! exactly the power that breaks fairness — and the composability
//! experiment (E13 in DESIGN.md) shows the best such attacker obtains the
//! same utility against this real protocol as against the ideal
//! [`SfeWithAbort`] hybrid.
//!
//! The protocol is *maximally unfair* by design: output shares are
//! broadcast in a single round, so a rushing adversary always learns the
//! output before deciding whether honest parties do. (That is the paper's
//! motivating observation: standard SFE gives the attacker payoff γ₁₀.)
//!
//! [`SfeWithAbort`]: crate::ideal::SfeWithAbort

use std::collections::BTreeMap;
use std::sync::Arc;

use fair_circuits::{bits_to_u64, Circuit, Gate};
use fair_runtime::{Envelope, FuncCtx, Functionality, OutMsg, Party, PartyId, RoundCtx, Value};
use rand::rngs::StdRng;
use rand::RngExt;

/// A Beaver multiplication triple share: (a, b, c) with Σa_i = a, Σb_i = b,
/// Σc_i = a∧b (sums over GF(2)).
pub type TripleShare = (bool, bool, bool);

/// GMW wire messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GmwMsg {
    /// Sender's XOR share of its own input bits, destined for one party.
    InputShare(Vec<bool>),
    /// Dealer → party: one triple share per AND gate, in gate order.
    Triples(Vec<TripleShare>),
    /// Broadcast: masked openings (d, e) for every AND gate of one wave.
    Open(Vec<(bool, bool)>),
    /// Broadcast: this party's shares of the output wires.
    OutShare(Vec<bool>),
}

/// Static, shareable GMW configuration: the circuit, the per-party input
/// widths, and the precomputed AND-wave schedule.
#[derive(Debug)]
pub struct GmwConfig {
    circuit: Circuit,
    input_widths: Vec<usize>,
    input_offsets: Vec<usize>,
    /// For each gate index, its AND-wave (0 for non-AND gates).
    gate_wave: Vec<usize>,
    /// AND gate indices per wave (1-based waves).
    wave_gates: Vec<Vec<usize>>,
    /// For each AND gate index, its triple index (position among ANDs).
    triple_index: BTreeMap<usize, usize>,
    max_wave: usize,
}

impl GmwConfig {
    /// Builds a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the widths do not sum to the circuit's input count, the
    /// circuit fails validation, or it has more than 64 output bits.
    pub fn new(circuit: Circuit, input_widths: Vec<usize>) -> Arc<GmwConfig> {
        circuit.validate().expect("valid circuit");
        assert_eq!(
            input_widths.iter().sum::<usize>(),
            circuit.num_inputs,
            "input widths must cover the circuit inputs"
        );
        assert!(circuit.outputs.len() <= 64, "outputs must fit in a u64");
        let mut input_offsets = Vec::with_capacity(input_widths.len());
        let mut off = 0;
        for w in &input_widths {
            input_offsets.push(off);
            off += w;
        }
        // Wave assignment: wire_wave[input] = 0; XOR/NOT/CONST inherit the
        // max of their operands; AND adds 1.
        let mut wire_wave = vec![0usize; circuit.num_wires()];
        let mut gate_wave = vec![0usize; circuit.gates.len()];
        let mut triple_index = BTreeMap::new();
        let mut max_wave = 0;
        let mut and_seen = 0;
        for (g, gate) in circuit.gates.iter().enumerate() {
            let w = circuit.num_inputs + g;
            wire_wave[w] = match *gate {
                Gate::Xor(a, b) => wire_wave[a.0].max(wire_wave[b.0]),
                Gate::Not(a) => wire_wave[a.0],
                Gate::Const(_) => 0,
                Gate::And(a, b) => {
                    let wave = wire_wave[a.0].max(wire_wave[b.0]) + 1;
                    gate_wave[g] = wave;
                    triple_index.insert(g, and_seen);
                    and_seen += 1;
                    max_wave = max_wave.max(wave);
                    wave
                }
            };
        }
        let mut wave_gates = vec![Vec::new(); max_wave + 1];
        for (g, &w) in gate_wave.iter().enumerate() {
            if w > 0 {
                wave_gates[w].push(g);
            }
        }
        Arc::new(GmwConfig {
            circuit,
            input_widths,
            input_offsets,
            gate_wave,
            wave_gates,
            triple_index,
            max_wave,
        })
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.input_widths.len()
    }

    /// The circuit being evaluated.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// AND-depth of the circuit (number of open rounds).
    pub fn waves(&self) -> usize {
        self.max_wave
    }

    /// Total protocol rounds (input sharing + opens + output exchange + 1).
    pub fn rounds(&self) -> usize {
        self.max_wave + 3
    }
}

/// A GMW party.
pub struct GmwParty {
    cfg: Arc<GmwConfig>,
    id: PartyId,
    input_bits: Vec<bool>,
    /// Pre-drawn shares of this party's input destined for each party
    /// (index = party id; own index holds the residual share).
    input_shares: Vec<Vec<bool>>,
    wires: Vec<Option<bool>>,
    triples: Vec<TripleShare>,
    opens: BTreeMap<PartyId, Vec<(bool, bool)>>,
    out_shares: BTreeMap<PartyId, Vec<bool>>,
    out: Option<Value>,
}

impl core::fmt::Debug for GmwParty {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GmwParty")
            .field("id", &self.id)
            .field("out", &self.out)
            .finish()
    }
}

impl Clone for GmwParty {
    fn clone(&self) -> Self {
        GmwParty {
            cfg: Arc::clone(&self.cfg),
            id: self.id,
            input_bits: self.input_bits.clone(),
            input_shares: self.input_shares.clone(),
            wires: self.wires.clone(),
            triples: self.triples.clone(),
            opens: self.opens.clone(),
            out_shares: self.out_shares.clone(),
            out: self.out.clone(),
        }
    }
}

impl GmwParty {
    /// Creates a party holding `input` (little-endian bits of its declared
    /// width).
    ///
    /// # Panics
    ///
    /// Panics if the input width disagrees with the configuration.
    pub fn new(
        cfg: Arc<GmwConfig>,
        id: PartyId,
        input_bits: Vec<bool>,
        rng: &mut StdRng,
    ) -> GmwParty {
        let n = cfg.n();
        assert!(id.0 < n, "party id out of range");
        assert_eq!(
            input_bits.len(),
            cfg.input_widths[id.0],
            "input width mismatch"
        );
        // Pre-draw the XOR sharing of our input.
        let mut input_shares = vec![vec![false; input_bits.len()]; n];
        for (b, &bit) in input_bits.iter().enumerate() {
            let mut acc = bit;
            for (j, share) in input_shares.iter_mut().enumerate() {
                if j == id.0 {
                    continue;
                }
                let r: bool = rng.random();
                share[b] = r;
                acc ^= r;
            }
            input_shares[id.0][b] = acc;
        }
        GmwParty {
            cfg,
            id,
            input_bits,
            input_shares,
            wires: Vec::new(),
            triples: Vec::new(),
            opens: BTreeMap::new(),
            out_shares: BTreeMap::new(),
            out: None,
        }
    }

    fn abort(&mut self) -> Vec<OutMsg<GmwMsg>> {
        self.out = Some(Value::Bot);
        Vec::new()
    }

    /// Resolves all local (XOR/NOT/CONST) gates whose operands are known
    /// and all AND gates whose wave has been reconstructed into `wires`.
    fn resolve_local(&mut self, resolved_wave: usize) {
        let circuit = &self.cfg.circuit;
        for (g, gate) in circuit.gates.iter().enumerate() {
            let w = circuit.num_inputs + g;
            if self.wires[w].is_some() {
                continue;
            }
            let v = match *gate {
                Gate::Xor(a, b) => match (self.wires[a.0], self.wires[b.0]) {
                    (Some(x), Some(y)) => Some(x ^ y),
                    _ => None,
                },
                Gate::Not(a) => self.wires[a.0].map(|x| if self.id.0 == 0 { !x } else { x }),
                Gate::Const(c) => Some(if self.id.0 == 0 { c } else { false }),
                Gate::And(_, _) => {
                    // AND results are filled in by `reconstruct_wave`; only
                    // waves ≤ resolved_wave may be present.
                    debug_assert!(self.cfg.gate_wave[g] > resolved_wave);
                    None
                }
            };
            self.wires[w] = v;
        }
    }

    /// Computes this party's (d, e) openings for the given wave.
    fn wave_openings(&self, wave: usize) -> Vec<(bool, bool)> {
        self.cfg.wave_gates[wave]
            .iter()
            .map(|&g| {
                let (a, b) = match self.cfg.circuit.gates[g] {
                    Gate::And(a, b) => (a, b),
                    _ => unreachable!("wave gates are AND gates"),
                };
                let x = self.wires[a.0].expect("AND operand resolved");
                let y = self.wires[b.0].expect("AND operand resolved");
                let t = self.triples[self.cfg.triple_index[&g]];
                (x ^ t.0, y ^ t.1)
            })
            .collect()
    }

    /// Reconstructs wave `wave` AND outputs from everyone's openings.
    ///
    /// Returns `false` (abort) if any party's opening is missing/malformed.
    fn reconstruct_wave(&mut self, wave: usize) -> bool {
        let gates = self.cfg.wave_gates[wave].clone();
        let n = self.cfg.n();
        if self.opens.len() != n {
            return false;
        }
        if self.opens.values().any(|v| v.len() != gates.len()) {
            return false;
        }
        for (k, &g) in gates.iter().enumerate() {
            let mut d = false;
            let mut e = false;
            for v in self.opens.values() {
                d ^= v[k].0;
                e ^= v[k].1;
            }
            let t = self.triples[self.cfg.triple_index[&g]];
            let mut z = t.2 ^ (d & t.1) ^ (e & t.0);
            if self.id.0 == 0 {
                z ^= d & e;
            }
            let w = self.cfg.circuit.num_inputs + g;
            self.wires[w] = Some(z);
        }
        self.opens.clear();
        true
    }

    /// Broadcasts a wave opening, registering our own contribution
    /// immediately (the loopback copy is deduplicated on arrival) so that
    /// forked lookaheads see a consistent state.
    fn send_open(&mut self, wave: usize) -> Vec<OutMsg<GmwMsg>> {
        let mine = self.wave_openings(wave);
        self.opens.insert(self.id, mine.clone());
        vec![OutMsg::broadcast(GmwMsg::Open(mine))]
    }

    /// Broadcasts our output share, registering it immediately.
    fn send_out_share(&mut self) -> Vec<OutMsg<GmwMsg>> {
        let mine = self.output_share();
        self.out_shares.insert(self.id, mine.clone());
        vec![OutMsg::broadcast(GmwMsg::OutShare(mine))]
    }

    fn output_share(&self) -> Vec<bool> {
        self.cfg
            .circuit
            .outputs
            .iter()
            .map(|o| self.wires[o.0].expect("output wire resolved"))
            .collect()
    }
}

impl Party<GmwMsg> for GmwParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<GmwMsg>]) -> Vec<OutMsg<GmwMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        let n = self.cfg.n();
        let w_max = self.cfg.max_wave;
        match ctx.round {
            // Round 0: distribute input shares.
            0 => (0..n)
                .filter(|&j| j != self.id.0)
                .map(|j| {
                    OutMsg::to_party(PartyId(j), GmwMsg::InputShare(self.input_shares[j].clone()))
                })
                .collect(),
            // Round 1: collect input shares + triples, resolve, open wave 1
            // (or exchange outputs if the circuit has no ANDs).
            1 => {
                let mut got: BTreeMap<PartyId, Vec<bool>> = BTreeMap::new();
                for e in inbox {
                    match (&e.msg, e.from_party()) {
                        (GmwMsg::InputShare(s), Some(p)) => {
                            got.entry(p).or_insert_with(|| s.clone());
                        }
                        (GmwMsg::Triples(t), None) => self.triples = t.clone(),
                        _ => {}
                    }
                }
                if got.len() != n - 1 || self.triples.len() != self.cfg.circuit.and_count() {
                    return self.abort();
                }
                // Install input-wire shares.
                self.wires = vec![None; self.cfg.circuit.num_wires()];
                for j in 0..n {
                    let (off, width) = (self.cfg.input_offsets[j], self.cfg.input_widths[j]);
                    let share = if j == self.id.0 {
                        self.input_shares[self.id.0].clone()
                    } else {
                        let s = got.remove(&PartyId(j)).expect("checked above");
                        if s.len() != width {
                            self.out = Some(Value::Bot);
                            return Vec::new();
                        }
                        s
                    };
                    for (b, &bit) in share.iter().enumerate() {
                        self.wires[off + b] = Some(bit);
                    }
                }
                self.resolve_local(0);
                if w_max == 0 {
                    self.send_out_share()
                } else {
                    self.send_open(1)
                }
            }
            // Rounds 2..=w_max+1: reconstruct previous wave, open next (or
            // exchange outputs). The final round collects output shares.
            r => {
                // Collect this round's messages.
                for e in inbox {
                    match (&e.msg, e.from_party()) {
                        (GmwMsg::Open(v), Some(p)) => {
                            self.opens.entry(p).or_insert_with(|| v.clone());
                        }
                        (GmwMsg::OutShare(s), Some(p)) => {
                            self.out_shares.entry(p).or_insert_with(|| s.clone());
                        }
                        _ => {}
                    }
                }
                let out_round = if w_max == 0 { 2 } else { w_max + 2 };
                if r < out_round {
                    // Reconstruct wave r-1, then open wave r or exchange.
                    let wave = r - 1;
                    if !self.reconstruct_wave(wave) {
                        return self.abort();
                    }
                    self.resolve_local(wave);
                    if wave == w_max {
                        self.send_out_share()
                    } else {
                        self.send_open(wave + 1)
                    }
                } else {
                    // Final round: combine output shares.
                    let want = self.cfg.circuit.outputs.len();
                    if self.out_shares.len() != n
                        || self.out_shares.values().any(|s| s.len() != want)
                    {
                        return self.abort();
                    }
                    let mut bits = vec![false; want];
                    for s in self.out_shares.values() {
                        for (i, &b) in s.iter().enumerate() {
                            bits[i] ^= b;
                        }
                    }
                    self.out = Some(Value::Scalar(bits_to_u64(&bits)));
                    Vec::new()
                }
            }
        }
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<GmwMsg>> {
        Box::new(self.clone())
    }
}

/// The trusted Beaver-triple dealer (the offline phase as a hybrid).
pub struct TripleDealer {
    cfg: Arc<GmwConfig>,
    dealt: bool,
}

impl TripleDealer {
    /// Creates the dealer for a configuration.
    pub fn new(cfg: Arc<GmwConfig>) -> TripleDealer {
        TripleDealer { cfg, dealt: false }
    }
}

impl Functionality<GmwMsg> for TripleDealer {
    fn name(&self) -> &str {
        "F_triple_dealer"
    }

    fn on_round(
        &mut self,
        ctx: &mut FuncCtx<'_>,
        _incoming: &[Envelope<GmwMsg>],
    ) -> Vec<OutMsg<GmwMsg>> {
        if self.dealt {
            return Vec::new();
        }
        self.dealt = true;
        let n = ctx.n;
        let ands = self.cfg.circuit.and_count();
        let mut per_party: Vec<Vec<TripleShare>> = vec![Vec::with_capacity(ands); n];
        for _ in 0..ands {
            let a: bool = ctx.rng.random();
            let b: bool = ctx.rng.random();
            let c = a & b;
            let (mut sa, mut sb, mut sc) = (a, b, c);
            for p in per_party.iter_mut().take(n - 1) {
                let (ra, rb, rc): (bool, bool, bool) =
                    (ctx.rng.random(), ctx.rng.random(), ctx.rng.random());
                p.push((ra, rb, rc));
                sa ^= ra;
                sb ^= rb;
                sc ^= rc;
            }
            per_party[n - 1].push((sa, sb, sc));
        }
        per_party
            .into_iter()
            .enumerate()
            .map(|(i, t)| OutMsg::to_party(PartyId(i), GmwMsg::Triples(t)))
            .collect()
    }
}

/// Builds a ready-to-run GMW instance for `cfg` with the given per-party
/// inputs (as u64s, truncated to each party's declared width).
pub fn gmw_instance(
    cfg: &Arc<GmwConfig>,
    inputs: &[u64],
    rng: &mut StdRng,
) -> fair_runtime::Instance<GmwMsg> {
    assert_eq!(inputs.len(), cfg.n(), "one input per party");
    let parties = inputs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let bits = fair_circuits::u64_to_bits(x, cfg.input_widths[i]);
            Box::new(GmwParty::new(Arc::clone(cfg), PartyId(i), bits, rng))
                as Box<dyn Party<GmwMsg>>
        })
        .collect();
    fair_runtime::Instance {
        parties,
        funcs: vec![Box::new(TripleDealer::new(Arc::clone(cfg)))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_circuits::functions;
    use fair_runtime::{execute, Passive};
    use rand::SeedableRng;

    fn run_gmw(cfg: &Arc<GmwConfig>, inputs: &[u64], seed: u64) -> fair_runtime::ExecutionResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = gmw_instance(cfg, inputs, &mut rng);
        execute(inst, &mut Passive, &mut rng, cfg.rounds() + 4).expect("execution succeeds")
    }

    #[test]
    fn gmw_computes_and() {
        let cfg = GmwConfig::new(functions::and1(), vec![1, 1]);
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let res = run_gmw(&cfg, &[a, b], 7 + a * 2 + b);
            assert!(res.all_honest_output(&Value::Scalar(a & b)), "{a} & {b}");
        }
    }

    #[test]
    fn gmw_computes_millionaires_three_waves() {
        let cfg = GmwConfig::new(functions::millionaires(8), vec![8, 8]);
        assert!(cfg.waves() > 1, "comparator should have AND depth > 1");
        for (a, b, seed) in [(200u64, 100u64, 1u64), (100, 200, 2), (55, 55, 3)] {
            let res = run_gmw(&cfg, &[a, b], seed);
            assert!(
                res.all_honest_output(&Value::Scalar((a > b) as u64)),
                "{a} > {b}"
            );
        }
    }

    #[test]
    fn gmw_computes_xor_only_circuit() {
        let cfg = GmwConfig::new(functions::xor_n(3), vec![1, 1, 1]);
        assert_eq!(cfg.waves(), 0);
        let res = run_gmw(&cfg, &[1, 1, 0], 5);
        assert!(res.all_honest_output(&Value::Scalar(0)));
        let res = run_gmw(&cfg, &[1, 0, 0], 6);
        assert!(res.all_honest_output(&Value::Scalar(1)));
    }

    #[test]
    fn gmw_five_party_sum() {
        let cfg = GmwConfig::new(functions::sum_mod(5, 4), vec![4, 4, 4, 4, 4]);
        let inputs = [3u64, 7, 11, 2, 15];
        let expect = inputs.iter().sum::<u64>() % 16;
        let res = run_gmw(&cfg, &inputs, 9);
        assert!(res.all_honest_output(&Value::Scalar(expect)));
    }

    #[test]
    fn silent_party_causes_unanimous_abort() {
        struct Silent;
        impl fair_runtime::Adversary<GmwMsg> for Silent {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                _v: &fair_runtime::RoundView<'_, GmwMsg>,
                _c: &mut fair_runtime::AdvControl<'_, GmwMsg>,
                _r: &mut StdRng,
            ) {
            }
        }
        let cfg = GmwConfig::new(functions::and1(), vec![1, 1]);
        let mut rng = StdRng::seed_from_u64(11);
        let inst = gmw_instance(&cfg, &[1, 1], &mut rng);
        let res =
            execute(inst, &mut Silent, &mut rng, cfg.rounds() + 4).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(1)], Value::Bot);
    }

    #[test]
    fn malformed_open_causes_abort() {
        /// Runs p1 honestly except that its wave-1 opening is truncated.
        struct Malform;
        impl fair_runtime::Adversary<GmwMsg> for Malform {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                view: &fair_runtime::RoundView<'_, GmwMsg>,
                ctrl: &mut fair_runtime::AdvControl<'_, GmwMsg>,
                _r: &mut StdRng,
            ) {
                if view.round <= 1 {
                    ctrl.run_honestly(PartyId(0));
                } else if view.round == 2 {
                    ctrl.send_as(PartyId(0), OutMsg::broadcast(GmwMsg::Open(vec![])));
                }
            }
        }
        let cfg = GmwConfig::new(functions::millionaires(4), vec![4, 4]);
        let mut rng = StdRng::seed_from_u64(13);
        let inst = gmw_instance(&cfg, &[9, 3], &mut rng);
        let res =
            execute(inst, &mut Malform, &mut rng, cfg.rounds() + 4).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(1)], Value::Bot);
    }

    #[test]
    fn config_rejects_bad_widths() {
        let result = std::panic::catch_unwind(|| GmwConfig::new(functions::and1(), vec![1, 2]));
        assert!(result.is_err());
    }
}
