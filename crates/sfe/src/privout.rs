//! The public-output → private-output transform of Appendix B.
//!
//! A public-output SFE protocol can evaluate a function with *private*
//! per-party outputs by the paper's standard trick: each party p_i inputs,
//! besides its function input x_i, a fresh one-time key k_i; the public
//! output is the vector (y₁ ⊕ k₁, …, yₙ ⊕ kₙ) in which every component is
//! perfectly blinded by the key of its owner. Each party decrypts its own
//! slot and learns nothing about the others'.
//!
//! Here keys are PRG seeds (the pad is the seed-expanded stream, so
//! arbitrary-length outputs are covered) and the blinding operates on the
//! canonical [`Value`] encoding.

use std::sync::Arc;

use fair_crypto::prg::Prg;
use fair_runtime::Value;
use rand::rngs::StdRng;
use rand::Rng;

use crate::spec::{IdealOutput, IdealSpec};

/// A function with one private output per party, at the `Value` level.
pub type PrivateVecFn = Arc<dyn Fn(&[Value]) -> Vec<Value> + Send + Sync>;

/// Byte length of the one-time keys (PRG seeds).
pub const KEY_LEN: usize = 16;

/// Samples a fresh blinding key.
pub fn sample_key<R: Rng + ?Sized>(rng: &mut R) -> Vec<u8> {
    fair_crypto::prg::random_bytes(rng, KEY_LEN)
}

/// Wraps a party's function input together with its blinding key, as the
/// transformed protocol expects it: `Pair(x, Bytes(k))`.
pub fn wrap_input(x: Value, key: &[u8]) -> Value {
    Value::pair(x, Value::Bytes(key.to_vec()))
}

fn blind(plain: &Value, key: &[u8]) -> Value {
    let enc = plain.encode();
    let pad = Prg::new(key).next_bytes(enc.len());
    Value::Bytes(enc.iter().zip(&pad).map(|(a, b)| a ^ b).collect())
}

/// Decrypts one blinded component with the owner's key. Returns `None` if
/// the ciphertext does not decode under this key (i.e. it is not yours).
pub fn unblind(component: &Value, key: &[u8]) -> Option<Value> {
    let ct = component.as_bytes()?;
    let pad = Prg::new(key).next_bytes(ct.len());
    let enc: Vec<u8> = ct.iter().zip(&pad).map(|(a, b)| a ^ b).collect();
    Value::decode(&enc)
}

/// Extracts party `i`'s private output from the public blinded vector.
pub fn extract(public: &Value, i: usize, key: &[u8]) -> Option<Value> {
    let Value::Tuple(slots) = public else {
        return None;
    };
    unblind(slots.get(i)?, key)
}

/// The transformed *public-output* specification: takes wrapped inputs
/// `Pair(x_i, k_i)` and outputs the blinded vector to everyone. Records
/// the fact `y` (the public blinded vector) — the private plaintexts are
/// deliberately *not* put in the ledger, matching what any protocol
/// participant can observe.
pub fn blinded_spec(name: &str, n: usize, f: PrivateVecFn) -> IdealSpec {
    IdealSpec::new(name, n, move |inputs, _rng: &mut StdRng| {
        let mut xs = Vec::with_capacity(inputs.len());
        let mut keys: Vec<Option<Vec<u8>>> = Vec::with_capacity(inputs.len());
        for inp in inputs {
            match inp {
                Value::Pair(x, k) => {
                    xs.push((**x).clone());
                    keys.push(k.as_bytes().map(<[u8]>::to_vec));
                }
                other => {
                    xs.push(other.clone());
                    keys.push(None);
                }
            }
        }
        let ys = f(&xs);
        assert_eq!(ys.len(), inputs.len(), "one private output per party");
        let slots: Vec<Value> = ys
            .iter()
            .zip(&keys)
            .map(|(y, k)| match k {
                Some(key) => blind(y, key),
                // A party that supplied no key gets its slot in the clear
                // (its own choice — it forfeited the blinding).
                None => y.clone(),
            })
            .collect();
        let public = Value::Tuple(slots);
        IdealOutput {
            facts: vec![("y".to_string(), public.clone())],
            per_party: vec![public; inputs.len()],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The swap function with genuinely private outputs: p1 gets x2, p2
    /// gets x1.
    fn swap_priv() -> PrivateVecFn {
        Arc::new(|xs: &[Value]| vec![xs[1].clone(), xs[0].clone()])
    }

    #[test]
    fn blinded_spec_roundtrips_each_party_slot() {
        let mut rng = StdRng::seed_from_u64(0);
        let k1 = sample_key(&mut rng);
        let k2 = sample_key(&mut rng);
        let spec = blinded_spec("swap-priv", 2, swap_priv());
        let out = spec.eval(
            &[
                wrap_input(Value::Scalar(10), &k1),
                wrap_input(Value::Scalar(20), &k2),
            ],
            &mut rng,
        );
        let public = &out.per_party[0];
        assert_eq!(out.per_party[1], *public, "public output is common");
        assert_eq!(extract(public, 0, &k1), Some(Value::Scalar(20)));
        assert_eq!(extract(public, 1, &k2), Some(Value::Scalar(10)));
    }

    #[test]
    fn wrong_key_reveals_nothing_decodable() {
        let mut rng = StdRng::seed_from_u64(1);
        let k1 = sample_key(&mut rng);
        let k2 = sample_key(&mut rng);
        let spec = blinded_spec("swap-priv", 2, swap_priv());
        let out = spec.eval(
            &[
                wrap_input(Value::Scalar(123456), &k1),
                wrap_input(Value::Scalar(654321), &k2),
            ],
            &mut rng,
        );
        // p1 trying to open p2's slot with its own key: the decode fails
        // (or, with negligible probability, yields garbage ≠ plaintext).
        let stolen = extract(&out.per_party[0], 1, &k1);
        assert_ne!(stolen, Some(Value::Scalar(123456)));
    }

    #[test]
    fn blinding_is_key_dependent() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = blinded_spec("swap-priv", 2, swap_priv());
        let k = sample_key(&mut rng);
        let out1 = spec.eval(
            &[
                wrap_input(Value::Scalar(5), &k),
                wrap_input(Value::Scalar(6), &sample_key(&mut rng)),
            ],
            &mut rng,
        );
        let out2 = spec.eval(
            &[
                wrap_input(Value::Scalar(5), &sample_key(&mut rng)),
                wrap_input(Value::Scalar(6), &sample_key(&mut rng)),
            ],
            &mut rng,
        );
        // Same plaintexts, fresh keys → different ciphertext slots.
        assert_ne!(out1.per_party[0], out2.per_party[0]);
    }

    #[test]
    fn missing_key_degrades_to_clear_slot() {
        let mut rng = StdRng::seed_from_u64(3);
        let k2 = sample_key(&mut rng);
        let spec = blinded_spec("swap-priv", 2, swap_priv());
        let out = spec.eval(
            &[Value::Scalar(7), wrap_input(Value::Scalar(8), &k2)],
            &mut rng,
        );
        let Value::Tuple(slots) = &out.per_party[0] else {
            panic!("tuple")
        };
        assert_eq!(slots[0], Value::Scalar(8), "keyless party's slot is clear");
        assert_eq!(extract(&out.per_party[0], 1, &k2), Some(Value::Scalar(7)));
    }

    #[test]
    fn works_end_to_end_through_the_fair_functionality() {
        use crate::dummy::SfeDummyParty;
        use crate::ideal::FairSfe;
        use fair_runtime::{execute, Instance, PartyId, Passive};

        let mut rng = StdRng::seed_from_u64(4);
        let k1 = sample_key(&mut rng);
        let k2 = sample_key(&mut rng);
        let inst = Instance {
            parties: vec![
                Box::new(SfeDummyParty::new(wrap_input(Value::Scalar(1), &k1))),
                Box::new(SfeDummyParty::new(wrap_input(Value::Scalar(2), &k2))),
            ],
            funcs: vec![Box::new(FairSfe::new(blinded_spec(
                "swap-priv",
                2,
                swap_priv(),
            )))],
        };
        let res = execute(inst, &mut Passive, &mut rng, 20).expect("execution succeeds");
        let pub1 = &res.outputs[&PartyId(0)];
        assert_eq!(extract(pub1, 0, &k1), Some(Value::Scalar(2)));
        assert_eq!(
            extract(&res.outputs[&PartyId(1)], 1, &k2),
            Some(Value::Scalar(1))
        );
    }
}
