#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Umbrella crate re-exporting the whole `fair-protocols` workspace.
//!
//! Downstream users who want everything can depend on `fair-suite`; the
//! individual crates remain usable on their own.
pub use fair_bench as bench;
pub use fair_circuits as circuits;
pub use fair_core as core;
pub use fair_crypto as crypto;
pub use fair_field as field;
pub use fair_protocols as protocols;
pub use fair_runtime as runtime;
pub use fair_serve as serve;
pub use fair_sfe as sfe;
